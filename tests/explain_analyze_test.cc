#include "engine/executor.h"

#include <gtest/gtest.h>

#include <string>

#include "core/sdp.h"
#include "engine/table_data.h"
#include "optimizer/dp.h"
#include "plan/plan_node.h"
#include "query/topology.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// Same small schema as engine_test.cc: joins stay interactive.
SchemaConfig SmallSchema() {
  SchemaConfig config;
  config.num_relations = 10;
  config.min_rows = 20;
  config.max_rows = 2000;
  config.min_domain = 10;
  config.max_domain = 2000;
  config.seed = 5;
  return config;
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  ExplainAnalyzeTest()
      : catalog_(MakeSyntheticCatalog(SmallSchema())),
        db_(Database::Generate(catalog_, 99)),
        stats_(db_.Analyze()) {}

  Query MakeQuery(Topology topology, int n, uint64_t seed = 31) const {
    WorkloadSpec spec;
    spec.topology = topology;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec).front();
  }

  Catalog catalog_;
  Database db_;
  StatsCatalog stats_;
};

TEST_F(ExplainAnalyzeTest, QErrorBasics) {
  EXPECT_DOUBLE_EQ(QError(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(QError(200, 100), 2.0);
  EXPECT_DOUBLE_EQ(QError(100, 200), 2.0);
  // Both sides clamp to >= 1 row, so empty results don't divide by zero.
  EXPECT_DOUBLE_EQ(QError(10, 0), 10.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
  EXPECT_GE(QError(0.25, 1), 1.0);
}

TEST_F(ExplainAnalyzeTest, ActualsMatchPlainExecution) {
  for (Topology t : {Topology::kChain, Topology::kStar, Topology::kStarChain}) {
    const Query q = MakeQuery(t, 6);
    CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
    const OptimizeResult r = OptimizeDP(q, cost);
    ASSERT_TRUE(r.feasible);

    Executor exec(db_, q.graph);
    const ResultSet plain = exec.Execute(r.plan);
    const AnalyzeResult analyzed = exec.ExecuteAnalyze(r.plan);

    // Same rows out, and the root operator's actuals agree with them.
    EXPECT_EQ(analyzed.result.num_rows(), plain.num_rows());
    ASSERT_FALSE(analyzed.operators.empty());
    EXPECT_EQ(analyzed.operators.front().node, r.plan);
    EXPECT_EQ(analyzed.operators.front().depth, 0);
    EXPECT_EQ(analyzed.operators.front().actual_rows,
              static_cast<int64_t>(plain.num_rows()));
  }
}

TEST_F(ExplainAnalyzeTest, EveryOperatorIsRecordedPreOrder) {
  const Query q = MakeQuery(Topology::kStarChain, 6);
  CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
  const OptimizeResult r = OptimizeDP(q, cost);
  ASSERT_TRUE(r.feasible);

  Executor exec(db_, q.graph);
  const AnalyzeResult analyzed = exec.ExecuteAnalyze(r.plan);

  // Count plan nodes.
  int nodes = 0;
  auto count = [&](const PlanNode* n, auto&& self) -> void {
    if (n == nullptr) return;
    ++nodes;
    self(n->outer, self);
    self(n->inner, self);
  };
  count(r.plan, count);
  EXPECT_EQ(analyzed.operators.size(), static_cast<size_t>(nodes));

  for (const PlanActuals& a : analyzed.operators) {
    ASSERT_NE(a.node, nullptr);
    EXPECT_GE(a.actual_rows, 0);
    EXPECT_GE(a.loops, 1);
    EXPECT_GE(a.seconds, 0);
    EXPECT_GE(a.depth, 0);
  }
  // Pre-order: a child's entry appears after its parent's and one deeper.
  for (size_t i = 1; i < analyzed.operators.size(); ++i) {
    EXPECT_LE(analyzed.operators[i].depth,
              analyzed.operators[i - 1].depth + 1);
  }
}

TEST_F(ExplainAnalyzeTest, ScanActualsMatchTableData) {
  const Query q = MakeQuery(Topology::kChain, 5);
  CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
  const OptimizeResult r = OptimizeDP(q, cost);
  ASSERT_TRUE(r.feasible);

  Executor exec(db_, q.graph);
  const AnalyzeResult analyzed = exec.ExecuteAnalyze(r.plan);
  for (const PlanActuals& a : analyzed.operators) {
    if (a.node->kind != PlanKind::kSeqScan &&
        a.node->kind != PlanKind::kIndexScan) {
      continue;
    }
    const int table = q.graph.table_ids()[a.node->rel];
    EXPECT_EQ(a.actual_rows, db_.table(table).num_rows())
        << "scan of R" << a.node->rel;
    EXPECT_EQ(a.loops, 1);
  }
}

TEST_F(ExplainAnalyzeTest, IndexNestLoopLoopsEqualOuterRows) {
  // Scan several instances so at least one DP plan uses an INL join.
  bool saw_inl = false;
  for (uint64_t seed = 31; seed < 40 && !saw_inl; ++seed) {
    const Query q = MakeQuery(Topology::kStarChain, 6, seed);
    CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
    const OptimizeResult r = OptimizeDP(q, cost);
    ASSERT_TRUE(r.feasible);

    Executor exec(db_, q.graph);
    const AnalyzeResult analyzed = exec.ExecuteAnalyze(r.plan);
    for (size_t i = 0; i < analyzed.operators.size(); ++i) {
      const PlanActuals& a = analyzed.operators[i];
      if (a.node->kind != PlanKind::kIndexNestLoop) continue;
      saw_inl = true;
      // The INL probes its index once per outer row: its loop count equals
      // the outer child's actual row count, and the outer child is the
      // next pre-order entry (the inner side is probed inline).
      ASSERT_LT(i + 1, analyzed.operators.size());
      const PlanActuals& outer = analyzed.operators[i + 1];
      EXPECT_EQ(outer.node, a.node->outer);
      EXPECT_EQ(a.loops, outer.actual_rows);
    }
  }
  EXPECT_TRUE(saw_inl) << "no DP plan chose an index nest-loop join";
}

TEST_F(ExplainAnalyzeTest, ReportRendersQErrorTable) {
  const Query q = MakeQuery(Topology::kStar, 6);
  CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
  const OptimizeResult r = OptimizeDP(q, cost);
  ASSERT_TRUE(r.feasible);

  Executor exec(db_, q.graph);
  const AnalyzeResult analyzed = exec.ExecuteAnalyze(r.plan);
  const std::string report = AnalyzeReport(analyzed);

  EXPECT_NE(report.find("q-err"), std::string::npos);
  EXPECT_NE(report.find("Scan"), std::string::npos);
  EXPECT_NE(report.find("worst operator q-error"), std::string::npos);
  // One table line per operator (plus header and summary lines).
  size_t lines = 0;
  for (char c : report) lines += c == '\n';
  EXPECT_GE(lines, analyzed.operators.size());
}

}  // namespace
}  // namespace sdp
