// Self-healing fleet chaos tests: real forked replicas under SIGKILLs,
// crash loops, poison queries and deterministic network faults.  Every
// test stands up its own fleet (or fake replicas) so chaos in one test
// cannot leak into another.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/socket_util.h"
#include "fleet/fleet_client.h"
#include "fleet/snapshot.h"
#include "fleet/supervisor.h"
#include "obs/dtrace.h"
#include "obs/flight_recorder.h"
#include "service/plan_fingerprint.h"
#include "workload/workload.h"

namespace sdp {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class FleetChaosTest : public ::testing::Test {
 protected:
  // Self-healing defaults tuned for test speed: fast reaper visibility,
  // small backoffs, rapid health probing.
  FleetConfig HealingConfig(int replicas) {
    FleetConfig config;
    config.num_replicas = replicas;
    config.service.num_threads = 2;
    config.health_interval_ms = 50;
    config.auto_respawn = true;
    config.cookie_dir = TempSubdir("cookies");
    config.respawn_backoff_ms = 50;
    config.respawn_backoff_max_ms = 200;
    config.respawn_jitter_seed = 7;
    // Window of 1ms: a replica that served even one request is never
    // "rapid", so organic crashes do not walk toward condemnation.
    config.crash_loop_window_ms = 1;
    return config;
  }

  std::string TempSubdir(const std::string& tag) {
    const std::string dir =
        ::testing::TempDir() + "fleet_chaos_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        "_" + tag + "_" + std::to_string(::getpid());
    (void)::mkdir(dir.c_str(), 0755);
    return dir;
  }

  void StartFleet(const FleetConfig& config) {
    fleet_ = std::make_unique<FleetSupervisor>(config);
    std::string error;
    ASSERT_TRUE(fleet_->Start(&error)) << error;
    ASSERT_TRUE(client_.Connect(fleet_->router_port(), 5000, &error))
        << error;
  }

  void TearDown() override {
    client_.Close();
    if (fleet_ != nullptr) fleet_->Stop();
    FaultInjector::Global().Disable();
  }

  std::vector<FleetRequest> MakeWorkload(int instances) const {
    const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
    WorkloadSpec spec;
    spec.topology = Topology::kChain;
    spec.num_relations = 6;
    spec.num_instances = instances;
    spec.seed = 13;
    std::vector<FleetRequest> requests;
    uint64_t id = 1;
    for (Query& q : GenerateWorkload(catalog, spec)) {
      FleetRequest req;
      req.request_id = id++;
      req.query = std::move(q);
      requests.push_back(std::move(req));
    }
    return requests;
  }

  FleetResponse MustOptimize(const FleetRequest& req) {
    FleetResponse resp;
    std::string error;
    EXPECT_TRUE(client_.Optimize(req, &resp, &error)) << error;
    EXPECT_TRUE(resp.ok) << resp.error;
    return resp;
  }

  bool WaitReplicaLive(int replica, bool want, double seconds) {
    const double deadline = NowMs() + seconds * 1000;
    while (NowMs() < deadline) {
      if (fleet_->router()->ReplicaLive(replica) == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  bool WaitRestarts(int replica, uint64_t want, double seconds) {
    const double deadline = NowMs() + seconds * 1000;
    while (NowMs() < deadline) {
      if (fleet_->ReplicaRestarts(replica) >= want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  std::string Fleetz() const {
    HttpRequest req;
    req.method = "GET";
    req.path = "/fleetz";
    return fleet_->router()->HandleHttp(req).body;
  }

  std::string Metrics() const {
    HttpRequest req;
    req.method = "GET";
    req.path = "/metrics";
    return fleet_->router()->HandleHttp(req).body;
  }

  std::unique_ptr<FleetSupervisor> fleet_;
  FleetClient client_;
};

// ---------------------------------------------------------------------------
// Tentpole 1: SIGKILL -> the reaper collects the corpse and respawns the
// replica on its retained fd within the backoff bound, and the healed
// fleet serves byte-identical plans.

TEST_F(FleetChaosTest, SigkillAutoRespawnHealsWithIdenticalPlans) {
  StartFleet(HealingConfig(3));
  const std::vector<FleetRequest> workload = MakeWorkload(6);
  std::map<uint64_t, std::string> fingerprints;
  int victim = -1;
  for (const FleetRequest& req : workload) {
    const FleetResponse resp = MustOptimize(req);
    fingerprints[req.request_id] = resp.fingerprint;
    victim = resp.replica_id;
  }
  ASSERT_GE(victim, 0);

  // Organic crash: SIGKILL with the replica still *managed*, so the
  // reaper must respawn it -- unlike KillReplica, which unmanages.
  const double t0 = NowMs();
  ASSERT_TRUE(fleet_->CrashReplica(victim, SIGKILL));
  ASSERT_TRUE(WaitRestarts(victim, 1, 5.0))
      << "reaper never respawned the SIGKILLed replica";
  const double elapsed_ms = NowMs() - t0;
  // Bound: reaper tick (20ms) + backoff base (50ms) + jitter (<= 12ms)
  // + fork/poll slop.  2s is an order of magnitude of headroom, so a
  // pass means "promptly", not "eventually".
  EXPECT_LT(elapsed_ms, 2000) << "respawn exceeded the backoff bound";
  EXPECT_EQ(fleet_->ReplicaRestarts(victim), 1u);
  ASSERT_TRUE(WaitReplicaLive(victim, true, 10.0))
      << "respawned replica never rejoined the ring";

  // The healed fleet answers every key with the identical plan, and the
  // crash cost zero client-visible failures (no traffic was in flight).
  for (const FleetRequest& req : workload) {
    const FleetResponse resp = MustOptimize(req);
    EXPECT_EQ(resp.fingerprint, fingerprints[req.request_id])
        << "respawn changed the plan for request " << req.request_id;
  }
  EXPECT_EQ(fleet_->router()->stats().failed_after_retry, 0u);
  EXPECT_FALSE(fleet_->ReplicaCondemned(victim));
  // An idle SIGKILL leaves an empty cookie: no strikes, no quarantine.
  EXPECT_EQ(fleet_->router()->stats().quarantined_keys, 0u);

  const std::string fleetz = Fleetz();
  EXPECT_NE(fleetz.find("\"restarts\": 1"), std::string::npos) << fleetz;
  const std::string metrics = Metrics();
  EXPECT_NE(metrics.find("sdp_fleet_restarts_total{replica=\"" +
                         std::to_string(victim) + "\"} 1"),
            std::string::npos)
      << metrics;
}

// ---------------------------------------------------------------------------
// Tentpole 1 (crash loop): a replica whose respawns die at birth is
// condemned -- removed from the ring for good -- and the shrunk fleet
// keeps serving every key with zero lost requests.

TEST_F(FleetChaosTest, CrashLoopCondemnsReplicaAndFleetKeepsServing) {
  FleetConfig config = HealingConfig(3);
  config.condemn_after = 2;
  // Every crash counts as rapid, so two dead-at-birth respawns condemn.
  config.crash_loop_window_ms = 60000;
  StartFleet(config);

  const std::vector<FleetRequest> workload = MakeWorkload(6);
  std::map<uint64_t, std::string> fingerprints;
  int victim = -1;
  for (const FleetRequest& req : workload) {
    const FleetResponse resp = MustOptimize(req);
    fingerprints[req.request_id] = resp.fingerprint;
    victim = resp.replica_id;
  }
  ASSERT_GE(victim, 0);

  // The next respawns of the victim exit immediately (simulated bad
  // binary / poisoned state), driving the crash-loop counter up.
  fleet_->FailNextSpawns(victim, 2);
  ASSERT_TRUE(fleet_->CrashReplica(victim, SIGKILL));
  const double deadline = NowMs() + 15000;
  while (NowMs() < deadline && !fleet_->ReplicaCondemned(victim)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(fleet_->ReplicaCondemned(victim))
      << "crash loop never led to condemnation";
  EXPECT_TRUE(fleet_->router()->ReplicaCondemned(victim));
  EXPECT_FALSE(fleet_->ReplicaAlive(victim));
  ASSERT_NE(fleet_->board(), nullptr);
  EXPECT_GE(fleet_->board()->replicas[victim].crashes.load(), 2u);
  EXPECT_TRUE(fleet_->board()->replicas[victim].condemned.load());

  // The ring shrank: every request lands on a survivor, plans unchanged,
  // nothing lost.
  for (const FleetRequest& req : workload) {
    const FleetResponse resp = MustOptimize(req);
    EXPECT_NE(resp.replica_id, victim) << "condemned replica answered";
    EXPECT_EQ(resp.fingerprint, fingerprints[req.request_id]);
  }
  EXPECT_EQ(fleet_->router()->stats().failed_after_retry, 0u);

  const std::string fleetz = Fleetz();
  EXPECT_NE(fleetz.find("\"condemned\": true"), std::string::npos) << fleetz;
  const std::string metrics = Metrics();
  EXPECT_NE(metrics.find("sdp_fleet_condemned{replica=\"" +
                         std::to_string(victim) + "\"} 1"),
            std::string::npos)
      << metrics;

  // Operator absolution: RestartReplica clears the verdict and the
  // replica rejoins.
  ASSERT_TRUE(fleet_->RestartReplica(victim));
  EXPECT_FALSE(fleet_->ReplicaCondemned(victim));
  EXPECT_FALSE(fleet_->router()->ReplicaCondemned(victim));
  ASSERT_TRUE(WaitReplicaLive(victim, true, 10.0))
      << "absolved replica never rejoined";
  MustOptimize(workload[0]);
}

// ---------------------------------------------------------------------------
// Tentpole 2: a poison query that crashes whatever replica touches it is
// quarantined after N strikes and served *degraded* (greedy-only rung),
// and the quarantine survives a supervisor restart.

TEST_F(FleetChaosTest, PoisonKeyIsQuarantinedAndServedDegraded) {
  // Configure the injector BEFORE forking: replicas inherit the parent's
  // config.  Selector 0 = every key is poison; only one key is sent, so
  // only it accumulates strikes.  95% leaves room for the occasional
  // clean serve without stalling the crash schedule.
  FaultInjectionScope inject(21, "replica.poison%0.95");
  ASSERT_TRUE(inject.ok()) << inject.error();

  FleetConfig config = HealingConfig(2);
  config.condemn_after = 1000;  // Quarantine, not condemnation, must act.
  config.quarantine_strikes = 3;
  config.retry_budget_burst = 10000;  // The budget is not under test here.
  StartFleet(config);

  const FleetRequest poison = MakeWorkload(1).at(0);
  FleetResponse resp;
  const double deadline = NowMs() + 60000;
  bool quarantined_serve = false;
  while (NowMs() < deadline) {
    std::string error;
    if (!client_.Optimize(poison, &resp, &error)) {
      // The router itself never dies; reconnect defensively anyway.
      client_.Close();
      if (!client_.Connect(fleet_->router_port(), 5000, &error)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        continue;
      }
      continue;
    }
    if (resp.ok && resp.degraded) {
      quarantined_serve = true;
      break;
    }
    const int backoff = resp.retry_after_ms > 0 ? resp.retry_after_ms : 100;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
  ASSERT_TRUE(quarantined_serve)
      << "poison key was never quarantined and served degraded";
  EXPECT_EQ(resp.rung, "greedy")
      << "degraded serve did not land on the greedy-only rung";
  EXPECT_TRUE(resp.feasible);

  const std::string key = fleet_->router()->RoutingKey(poison);
  EXPECT_TRUE(fleet_->router()->IsQuarantined(key));
  const RouterStats stats = fleet_->router()->stats();
  EXPECT_GE(stats.quarantine_served, 1u);
  EXPECT_GE(stats.quarantined_keys, 1u);
  const std::string metrics = Metrics();
  EXPECT_NE(metrics.find("sdp_fleet_quarantined_keys 1"), std::string::npos)
      << metrics;

  // The strike ledger was persisted as the strikes landed.
  std::vector<QuarantineEntry> entries;
  std::string qerror;
  ASSERT_EQ(LoadQuarantine(fleet_->quarantine_path(), &entries, &qerror),
            SnapshotStatus::kOk)
      << qerror;
  bool found = false;
  for (const QuarantineEntry& entry : entries) {
    if (entry.key == key) {
      found = true;
      EXPECT_GE(entry.strikes, 3u);
    }
  }
  EXPECT_TRUE(found) << "poison key missing from the quarantine file";

  // A degraded serve is still a cacheable, deterministic result: the
  // same request served degraded twice yields the same fingerprint.
  const std::string first_fingerprint = resp.fingerprint;
  const FleetResponse again = MustOptimize(poison);
  EXPECT_TRUE(again.degraded);
  EXPECT_EQ(again.fingerprint, first_fingerprint);

  // Quarantine outlives the supervisor: a fresh fleet over the same
  // cookie dir reloads the ledger and serves the key degraded from its
  // very first request -- no replica has to die again to re-learn it.
  FaultInjector::Global().Disable();
  client_.Close();
  fleet_->Stop();
  StartFleet(config);
  EXPECT_TRUE(fleet_->router()->IsQuarantined(key))
      << "quarantine ledger did not survive the supervisor restart";
  const FleetResponse reloaded = MustOptimize(poison);
  EXPECT_TRUE(reloaded.degraded);
  EXPECT_EQ(reloaded.rung, "greedy");
  EXPECT_EQ(fleet_->router()->stats().quarantine_served, 1u);
}

// ---------------------------------------------------------------------------
// Tentpole 4: the router-wide retry token budget sheds failover storms
// with a typed retry-after instead of amplifying them.

// A fake replica that passes the health probe and the ping gate but
// drops every optimize request -- the pathological "alive but useless"
// peer that turns every request into a failover.
class HalfDeadReplica {
 public:
  HalfDeadReplica() {
    std::string error;
    listen_fd_ = ListenLocalhost(0, &error);
    EXPECT_GE(listen_fd_, 0) << error;
    port_ = BoundPort(listen_fd_);
    thread_ = std::thread([this] { Serve(); });
  }

  ~HalfDeadReplica() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  int port() const { return port_; }

 private:
  void Serve() {
    while (!stop_.load()) {
      if (PollReadable(listen_fd_, 50) != 1) continue;
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) continue;
      SetIoTimeout(conn, 2000);
      Frame frame;
      while (!stop_.load() && ReadFrame(conn, &frame)) {
        if (frame.type == FrameType::kPing) {
          if (!WriteFrame(conn, FrameType::kPong, 0, std::string())) break;
        } else if (frame.type == FrameType::kStatsRequest) {
          FleetReplicaStats stats;
          if (!WriteFrame(conn, FrameType::kStatsResponse, 0,
                          EncodeReplicaStats(stats))) {
            break;
          }
        } else {
          break;  // Optimize (or anything else): hang up mid-request.
        }
      }
      ::close(conn);
    }
  }

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(FleetRetryBudgetTest, ExhaustionShedsWithTypedRetryAfter) {
  HalfDeadReplica rep_a;
  HalfDeadReplica rep_b;

  std::string error;
  const int listen_fd = ListenLocalhost(0, &error);
  ASSERT_GE(listen_fd, 0) << error;

  RouterConfig config;
  config.listen_fd = listen_fd;
  config.replica_ports = {rep_a.port(), rep_b.port()};
  config.max_attempts = 3;
  config.health_interval_ms = 50;
  // Zero budget: the very first retry (second attempt) must shed.
  config.retry_budget_burst = 0;
  config.retry_budget_ratio = 0;
  FleetRouter router(config);
  ASSERT_TRUE(router.Start(&error)) << error;

  FleetClient client;
  ASSERT_TRUE(client.Connect(BoundPort(listen_fd), 5000, &error)) << error;
  const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 6;
  spec.num_instances = 1;
  spec.seed = 13;
  FleetRequest req;
  req.request_id = 1;
  req.query = GenerateWorkload(catalog, spec).at(0);

  FleetResponse resp;
  ASSERT_TRUE(client.Optimize(req, &resp, &error)) << error;
  EXPECT_FALSE(resp.ok);
  EXPECT_TRUE(resp.rejected) << "shed must be a typed rejection";
  EXPECT_GT(resp.retry_after_ms, 0);
  EXPECT_NE(resp.error.find("retry budget"), std::string::npos) << resp.error;

  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.retry_budget_exhausted, 1u);
  EXPECT_EQ(stats.failed_after_retry, 0u)
      << "shed requests must not count as exhausted-all-attempts failures";

  HttpRequest mreq;
  mreq.method = "GET";
  mreq.path = "/metrics";
  EXPECT_NE(router.HandleHttp(mreq).body.find(
                "sdp_fleet_retry_budget_exhausted_total 1"),
            std::string::npos);

  client.Close();
  router.Stop();
  ::close(listen_fd);
}

TEST(FleetRetryBudgetTest, GenerousBudgetStillRetriesToExhaustion) {
  HalfDeadReplica rep_a;
  HalfDeadReplica rep_b;

  std::string error;
  const int listen_fd = ListenLocalhost(0, &error);
  ASSERT_GE(listen_fd, 0) << error;

  RouterConfig config;
  config.listen_fd = listen_fd;
  config.replica_ports = {rep_a.port(), rep_b.port()};
  config.max_attempts = 3;
  config.health_interval_ms = 50;  // Defaults: burst 64, ratio 0.2.
  FleetRouter router(config);
  ASSERT_TRUE(router.Start(&error)) << error;

  FleetClient client;
  ASSERT_TRUE(client.Connect(BoundPort(listen_fd), 5000, &error)) << error;
  const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 6;
  spec.num_instances = 1;
  spec.seed = 13;
  FleetRequest req;
  req.request_id = 1;
  req.query = GenerateWorkload(catalog, spec).at(0);

  FleetResponse resp;
  ASSERT_TRUE(client.Optimize(req, &resp, &error)) << error;
  EXPECT_FALSE(resp.ok);
  EXPECT_FALSE(resp.rejected)
      << "with budget to spare the failure must be exhaustion, not a shed";
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.retry_budget_exhausted, 0u);
  EXPECT_EQ(stats.failed_after_retry, 1u);
  EXPECT_GE(stats.failovers, 1u);

  client.Close();
  router.Stop();
  ::close(listen_fd);
}

// ---------------------------------------------------------------------------
// Tentpole 3: deterministic network chaos.  Every fault site delivers a
// typed failure (a false return / failed decode), never a crash, and the
// same seed fires the same faults.

class NetChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disable(); }

  static void MakePair(int fds[2]) {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    SetIoTimeout(fds[0], 2000);
    SetIoTimeout(fds[1], 2000);
  }
};

TEST_F(NetChaosTest, SocketFaultSitesDeliverTypedFailures) {
  const std::string payload = "chaos-payload";

  {  // Header corruption: the write "succeeds", the reader rejects the
     // frame as bad magic.  (The corrupt site targets the header byte
     // because the protocol has no payload checksum -- see DESIGN.md.)
    FaultInjectionScope inject(5, "net.frame.corrupt@1");
    ASSERT_TRUE(inject.ok()) << inject.error();
    int sp[2];
    MakePair(sp);
    EXPECT_TRUE(WriteFrame(sp[0], FrameType::kPing, 0, payload));
    Frame frame;
    EXPECT_FALSE(ReadFrame(sp[1], &frame)) << "corrupted magic was accepted";
    ::close(sp[0]);
    ::close(sp[1]);
  }

  {  // Truncation: the writer reports failure, the reader sees a torn
     // frame (EOF mid-payload), types it as a framing failure.
    FaultInjectionScope inject(5, "net.frame.truncate@1");
    ASSERT_TRUE(inject.ok()) << inject.error();
    int sp[2];
    MakePair(sp);
    EXPECT_FALSE(WriteFrame(sp[0], FrameType::kPing, 0, payload));
    ::close(sp[0]);
    Frame frame;
    EXPECT_FALSE(ReadFrame(sp[1], &frame)) << "torn frame was accepted";
    ::close(sp[1]);
  }

  {  // Connection reset: both sides observe a dead peer.
    FaultInjectionScope inject(5, "net.conn.reset@1");
    ASSERT_TRUE(inject.ok()) << inject.error();
    int sp[2];
    MakePair(sp);
    EXPECT_FALSE(WriteFrame(sp[0], FrameType::kPing, 0, payload));
    Frame frame;
    EXPECT_FALSE(ReadFrame(sp[1], &frame));
    ::close(sp[0]);
    ::close(sp[1]);
  }

  {  // Short write: transparent to the peer -- the frame arrives whole.
    FaultInjectionScope inject(5, "net.short-write@1");
    ASSERT_TRUE(inject.ok()) << inject.error();
    int sp[2];
    MakePair(sp);
    EXPECT_TRUE(WriteFrame(sp[0], FrameType::kPing, 0, payload));
    Frame frame;
    ASSERT_TRUE(ReadFrame(sp[1], &frame));
    EXPECT_EQ(frame.payload, payload);
    ::close(sp[0]);
    ::close(sp[1]);
  }

  {  // Injected delay: the frame is late but intact.
    FaultInjectionScope inject(5, "net.delay-ms@1=40");
    ASSERT_TRUE(inject.ok()) << inject.error();
    int sp[2];
    MakePair(sp);
    const double t0 = NowMs();
    EXPECT_TRUE(WriteFrame(sp[0], FrameType::kPing, 0, payload));
    EXPECT_GE(NowMs() - t0, 30.0) << "delay site did not stall the send";
    Frame frame;
    ASSERT_TRUE(ReadFrame(sp[1], &frame));
    EXPECT_EQ(frame.payload, payload);
    ::close(sp[0]);
    ::close(sp[1]);
  }
}

TEST_F(NetChaosTest, SameSeedFiresIdenticalFaultSchedule) {
  // Probabilistic rules derive from (seed, site, hit ordinal), so a
  // single-threaded frame schedule under the same seed must corrupt the
  // exact same frames.
  const auto run = [] {
    std::string pattern;
    FaultInjectionScope inject(1234, "net.frame.corrupt%0.4");
    EXPECT_TRUE(inject.ok()) << inject.error();
    for (int i = 0; i < 40; ++i) {
      int sp[2];
      EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
      SetIoTimeout(sp[1], 2000);
      EXPECT_TRUE(WriteFrame(sp[0], FrameType::kPing, 0, "x"));
      Frame frame;
      pattern.push_back(ReadFrame(sp[1], &frame) ? '.' : 'X');
      ::close(sp[0]);
      ::close(sp[1]);
    }
    return pattern;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second) << "same seed produced a different schedule";
  EXPECT_NE(first.find('X'), std::string::npos) << "no fault ever fired";
  EXPECT_NE(first.find('.'), std::string::npos) << "every frame corrupted";
}

TEST_F(NetChaosTest, FrameCodecRejectsEveryTruncation) {
  Frame frame;
  frame.type = FrameType::kOptimizeResponse;
  frame.flags = kFlagFillFollows | kFlagDegraded;
  frame.payload = "truncate-sweep-payload";
  frame.has_trace = true;
  frame.trace_id = 0x1122334455667788ull;
  frame.span_id = 0x99aabbccddeeff00ull;
  const std::string bytes = EncodeFrameBytes(frame);

  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string prefix = bytes.substr(0, len);
    size_t pos = 0;
    Frame out;
    EXPECT_FALSE(DecodeFrameBytes(prefix, &pos, &out))
        << "truncation to " << len << " bytes decoded";
    EXPECT_EQ(pos, 0u) << "failed decode advanced the cursor";
  }
  size_t pos = 0;
  Frame out;
  ASSERT_TRUE(DecodeFrameBytes(bytes, &pos, &out));
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(out.payload, frame.payload);
  EXPECT_TRUE(out.has_trace);
  EXPECT_EQ(out.trace_id, frame.trace_id);
  EXPECT_EQ(out.span_id, frame.span_id);
}

TEST_F(NetChaosTest, PayloadDecodersSurviveTruncationAndBitFlips) {
  const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 6;
  spec.num_instances = 1;
  spec.seed = 13;
  FleetRequest req;
  req.request_id = 77;
  req.query = GenerateWorkload(catalog, spec).at(0);
  const std::string req_bytes = EncodeFleetRequest(req);

  FleetResponse resp;
  resp.request_id = 77;
  resp.replica_id = 2;
  resp.ok = true;
  resp.feasible = true;
  resp.cost_bits = 0xdeadbeef;
  resp.fingerprint = "fp";
  resp.degraded = true;
  resp.rung = "greedy";
  const std::string resp_bytes = EncodeFleetResponse(resp);

  // Every strict prefix is a typed decode failure -- never a crash, and
  // never a silent success on a torn payload.
  for (size_t len = 0; len < req_bytes.size(); ++len) {
    FleetRequest out;
    EXPECT_FALSE(DecodeFleetRequest(req_bytes.substr(0, len), &out))
        << "request truncated to " << len << " bytes decoded";
  }
  for (size_t len = 0; len < resp_bytes.size(); ++len) {
    FleetResponse out;
    EXPECT_FALSE(DecodeFleetResponse(resp_bytes.substr(0, len), &out))
        << "response truncated to " << len << " bytes decoded";
  }

  // Bit flips may or may not be detectable (no payload checksum), but
  // they must never crash or hang the decoder.  ASan/UBSan in CI turn
  // any latent overrun here into a hard failure.
  for (size_t i = 0; i < req_bytes.size(); ++i) {
    std::string mutated = req_bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    FleetRequest out;
    (void)DecodeFleetRequest(mutated, &out);
  }
  for (size_t i = 0; i < resp_bytes.size(); ++i) {
    std::string mutated = resp_bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    FleetResponse out;
    (void)DecodeFleetResponse(mutated, &out);
  }

  // The degraded bits round-trip.
  FleetResponse round;
  ASSERT_TRUE(DecodeFleetResponse(resp_bytes, &round));
  EXPECT_TRUE(round.degraded);
  EXPECT_EQ(round.rung, "greedy");
}

// ---------------------------------------------------------------------------
// Crash-cookie and quarantine files: round trips plus typed failures for
// every way the files can rot on disk.

class SelfHealingPersistenceTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) const {
    return ::testing::TempDir() + "chaos_persist_" + name + "_" +
           std::to_string(::getpid());
  }

  static std::string Slurp(const std::string& path) {
    FILE* f = fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string bytes;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    fclose(f);
    return bytes;
  }
  static void Spew(const std::string& path, const std::string& bytes) {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    fclose(f);
  }
};

TEST_F(SelfHealingPersistenceTest, CookieRoundTripAndTypedFailures) {
  const std::string path = Path("cookie");
  const std::vector<std::string> keys = {"key-a|algo=0/7", "key-b|algo=1/3",
                                         "key-a|algo=0/7"};
  std::string error;
  ASSERT_EQ(SaveCrashCookie(path, keys, &error), SnapshotStatus::kOk) << error;

  std::vector<std::string> loaded;
  ASSERT_EQ(LoadCrashCookie(path, &loaded, &error), SnapshotStatus::kOk)
      << error;
  EXPECT_EQ(loaded, keys) << "cookie round trip changed the journal";

  // Missing file: a cold start, typed as an I/O error.
  EXPECT_EQ(LoadCrashCookie(Path("cookie_missing"), &loaded, &error),
            SnapshotStatus::kIoError);
  EXPECT_TRUE(loaded.empty());

  // Wrong magic (a quarantine file is not a cookie).
  std::vector<QuarantineEntry> qentries = {{"k", 2}};
  const std::string qpath = Path("cookie_xmagic");
  ASSERT_EQ(SaveQuarantine(qpath, qentries, &error), SnapshotStatus::kOk);
  EXPECT_EQ(LoadCrashCookie(qpath, &loaded, &error),
            SnapshotStatus::kBadMagic);

  // Flipped payload byte: checksum catches it.
  const std::string good = Slurp(path);
  std::string corrupt = good;
  corrupt[corrupt.size() - 1] = static_cast<char>(corrupt.back() ^ 0x01);
  Spew(path, corrupt);
  EXPECT_EQ(LoadCrashCookie(path, &loaded, &error),
            SnapshotStatus::kChecksumMismatch);
  EXPECT_TRUE(loaded.empty());

  // Truncated mid-payload: checksum again.
  Spew(path, good.substr(0, good.size() - 3));
  EXPECT_EQ(LoadCrashCookie(path, &loaded, &error),
            SnapshotStatus::kChecksumMismatch);

  // Truncated inside the header: not even a magic to check.
  Spew(path, good.substr(0, 4));
  EXPECT_EQ(LoadCrashCookie(path, &loaded, &error), SnapshotStatus::kBadMagic);

  // Future format version, with a valid checksum: typed version error.
  WireWriter w;
  w.PutU32(999);
  w.PutU32(0);
  const std::string payload = w.Take();
  std::string versioned = "SDPCOOK1";
  const uint64_t checksum = FingerprintHash(payload);
  versioned.append(reinterpret_cast<const char*>(&checksum),
                   sizeof(checksum));
  versioned += payload;
  Spew(path, versioned);
  EXPECT_EQ(LoadCrashCookie(path, &loaded, &error),
            SnapshotStatus::kBadVersion);
}

TEST_F(SelfHealingPersistenceTest, QuarantineRoundTripAndTypedFailures) {
  const std::string path = Path("quarantine");
  const std::vector<QuarantineEntry> entries = {
      {"poison-key|algo=0/7", 5}, {"suspect-key|algo=0/7", 1}};
  std::string error;
  ASSERT_EQ(SaveQuarantine(path, entries, &error), SnapshotStatus::kOk)
      << error;

  std::vector<QuarantineEntry> loaded;
  ASSERT_EQ(LoadQuarantine(path, &loaded, &error), SnapshotStatus::kOk)
      << error;
  ASSERT_EQ(loaded.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(loaded[i].key, entries[i].key);
    EXPECT_EQ(loaded[i].strikes, entries[i].strikes);
  }

  EXPECT_EQ(LoadQuarantine(Path("quarantine_missing"), &loaded, &error),
            SnapshotStatus::kIoError);

  // A cookie file is not a quarantine ledger.
  const std::string cpath = Path("quarantine_xmagic");
  ASSERT_EQ(SaveCrashCookie(cpath, {"k"}, &error), SnapshotStatus::kOk);
  EXPECT_EQ(LoadQuarantine(cpath, &loaded, &error),
            SnapshotStatus::kBadMagic);

  // Trailing garbage after a checksummed payload: strict decode fails.
  std::string padded = Slurp(path);
  {
    // Rebuild the checksum over payload+garbage so only the strict
    // decoder can object -- this isolates kCorrupt from the checksum.
    std::string payload = padded.substr(16);
    payload += '\0';
    const uint64_t checksum = FingerprintHash(payload);
    padded = padded.substr(0, 8);
    padded.append(reinterpret_cast<const char*>(&checksum),
                  sizeof(checksum));
    padded += payload;
  }
  Spew(path, padded);
  EXPECT_EQ(LoadQuarantine(path, &loaded, &error), SnapshotStatus::kCorrupt);
  EXPECT_TRUE(loaded.empty());
}

}  // namespace
}  // namespace sdp
