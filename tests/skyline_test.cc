#include "skyline/skyline.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/skyline_pruning.h"

namespace sdp {
namespace {

using Points = std::vector<std::vector<double>>;

TEST(SkylineTest, EmptyAndSingleton) {
  EXPECT_TRUE(SkylineNaive({}).empty());
  EXPECT_EQ(SkylineNaive({{1, 2}}), std::vector<char>({1}));
  EXPECT_TRUE(SkylineBNL({}).empty());
}

TEST(SkylineTest, SimpleDominance) {
  // (1,1) dominates everything else.
  const Points pts = {{1, 1}, {2, 2}, {1, 3}, {3, 1}};
  EXPECT_EQ(SkylineNaive(pts), std::vector<char>({1, 0, 0, 0}));
}

TEST(SkylineTest, AntichainSurvivesEntirely) {
  const Points pts = {{1, 4}, {2, 3}, {3, 2}, {4, 1}};
  EXPECT_EQ(SkylineNaive(pts), std::vector<char>({1, 1, 1, 1}));
}

TEST(SkylineTest, DuplicatesCoSurvive) {
  const Points pts = {{2, 2}, {2, 2}, {3, 3}};
  EXPECT_EQ(SkylineNaive(pts), std::vector<char>({1, 1, 0}));
  EXPECT_EQ(SkylineBNL(pts), std::vector<char>({1, 1, 0}));
  const std::vector<std::array<double, 2>> pts2 = {{2, 2}, {2, 2}, {3, 3}};
  EXPECT_EQ(Skyline2D(pts2), std::vector<char>({1, 1, 0}));
}

TEST(SkylineTest, PartialTieIsDominated) {
  // (1,2) dominates (1,3): equal first coordinate, strictly better second.
  const Points pts = {{1, 2}, {1, 3}};
  EXPECT_EQ(SkylineNaive(pts), std::vector<char>({1, 0}));
}

TEST(SkylineTest, ThreeDimensional) {
  const Points pts = {
      {1, 5, 5}, {5, 1, 5}, {5, 5, 1},  // Pairwise incomparable.
      {5, 5, 5},                        // Dominated by all three.
      {1, 1, 1},                        // Dominates everything.
  };
  const std::vector<char> expected = {0, 0, 0, 0, 1};
  EXPECT_EQ(SkylineNaive(pts), expected);
  EXPECT_EQ(SkylineBNL(pts), expected);
}

// Property: the three implementations agree on random inputs.
TEST(SkylineTest, ImplementationsAgreeRandom2D) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(40));
    Points pts;
    std::vector<std::array<double, 2>> pts2;
    for (int i = 0; i < n; ++i) {
      // Coarse grid so ties and duplicates happen often.
      const double x = static_cast<double>(rng.NextBounded(8));
      const double y = static_cast<double>(rng.NextBounded(8));
      pts.push_back({x, y});
      pts2.push_back({x, y});
    }
    const auto naive = SkylineNaive(pts);
    EXPECT_EQ(SkylineBNL(pts), naive) << "trial " << trial;
    EXPECT_EQ(Skyline2D(pts2), naive) << "trial " << trial;
  }
}

TEST(SkylineTest, ImplementationsAgreeRandom3D) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(30));
    Points pts;
    for (int i = 0; i < n; ++i) {
      pts.push_back({static_cast<double>(rng.NextBounded(6)),
                     static_cast<double>(rng.NextBounded(6)),
                     static_cast<double>(rng.NextBounded(6))});
    }
    EXPECT_EQ(SkylineBNL(pts), SkylineNaive(pts)) << "trial " << trial;
  }
}

// Property: no skyline member dominates another skyline member, and every
// non-member is dominated by some member.
TEST(SkylineTest, SkylineInvariants) {
  Rng rng(3);
  auto dominates = [](const std::vector<double>& p,
                      const std::vector<double>& q) {
    bool strict = false;
    for (size_t i = 0; i < p.size(); ++i) {
      if (p[i] > q[i]) return false;
      if (p[i] < q[i]) strict = true;
    }
    return strict;
  };
  for (int trial = 0; trial < 50; ++trial) {
    Points pts;
    const int n = 2 + static_cast<int>(rng.NextBounded(50));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
    }
    const auto flags = SkylineBNL(pts);
    for (int i = 0; i < n; ++i) {
      if (flags[i]) {
        for (int j = 0; j < n; ++j) {
          if (flags[j] && i != j) EXPECT_FALSE(dominates(pts[j], pts[i]));
        }
      } else {
        bool covered = false;
        for (int j = 0; j < n && !covered; ++j) {
          covered = flags[j] && dominates(pts[j], pts[i]);
        }
        EXPECT_TRUE(covered);
      }
    }
  }
}

TEST(KDominantSkylineTest, StrongerThanSkyline) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    Points pts;
    const int n = 2 + static_cast<int>(rng.NextBounded(30));
    for (int i = 0; i < n; ++i) {
      pts.push_back({static_cast<double>(rng.NextBounded(10)),
                     static_cast<double>(rng.NextBounded(10)),
                     static_cast<double>(rng.NextBounded(10))});
    }
    const auto strong = KDominantSkyline(pts, 2);
    const auto normal = SkylineNaive(pts);
    // 2-dominant skyline is a subset of the ordinary skyline.
    for (int i = 0; i < n; ++i) {
      if (strong[i]) EXPECT_TRUE(normal[i]);
    }
  }
}

TEST(KDominantSkylineTest, FullKEqualsSkyline) {
  const Points pts = {{1, 5, 5}, {5, 1, 5}, {5, 5, 1}, {2, 2, 2}};
  EXPECT_EQ(KDominantSkyline(pts, 3), SkylineNaive(pts));
}

// ---- SDP pruning wrappers (core/skyline_pruning) ----

TEST(PairwiseSkylineTest, PaperTable22Example) {
  // Table 2.2 of the paper: partition {123,125,135,145,156}; survivor set
  // is everything except 135.  (Feature vectors transcribed from the
  // paper; the 145 S-value reads "6.65-6", i.e. 6.65E-6.)
  const std::vector<JcrFeatures> features = {
      {187638, 49386, 3.9e-5},   // 123
      {122879, 52132, 1.0e-5},   // 125
      {242620, 56021, 1.0e-5},   // 135
      {241562, 55388, 6.65e-6},  // 145
      {385375, 52632, 4.5e-6},   // 156
  };
  const auto report = PairwiseSkylineReport(features);
  // 123: RC and CS, not RS.
  EXPECT_TRUE(report[0].rc);
  EXPECT_TRUE(report[0].cs);
  EXPECT_FALSE(report[0].rs);
  // 125: all three.
  EXPECT_TRUE(report[1].rc && report[1].cs && report[1].rs);
  // 135: none -> pruned.
  EXPECT_FALSE(report[2].survives());
  // 145: RS only.
  EXPECT_FALSE(report[3].rc);
  EXPECT_FALSE(report[3].cs);
  EXPECT_TRUE(report[3].rs);
  // 156: CS and RS.
  EXPECT_FALSE(report[4].rc);
  EXPECT_TRUE(report[4].cs);
  EXPECT_TRUE(report[4].rs);
}

TEST(SkylineSurvivorsTest, Option1RetainsMoreThanOption2Prunes) {
  // The full-vector (Option 1) skyline retains a superset of... actually of
  // nothing in general; but pairwise-union survivors are always inside the
  // full-vector skyline: surviving a 2-attribute skyline implies no point
  // dominates you on those two attributes, hence none dominates you on all
  // three.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<JcrFeatures> f;
    const int n = 2 + static_cast<int>(rng.NextBounded(30));
    for (int i = 0; i < n; ++i) {
      // Continuous coordinates: with ties, surviving a 2-D skyline does not
      // imply membership in the 3-D skyline, so keep the property exact.
      f.push_back(JcrFeatures{rng.NextDouble(), rng.NextDouble(),
                              rng.NextDouble()});
    }
    const auto pairwise = SkylineSurvivors(f, SkylineVariant::kPairwiseUnion);
    const auto full = SkylineSurvivors(f, SkylineVariant::kFullVector);
    for (int i = 0; i < n; ++i) {
      if (pairwise[i]) EXPECT_TRUE(full[i]) << "trial " << trial;
    }
  }
}

TEST(SkylineSurvivorsTest, StrongVariantIsSubsetOfFull) {
  Rng rng(6);
  std::vector<JcrFeatures> f;
  for (int i = 0; i < 40; ++i) {
    f.push_back(JcrFeatures{static_cast<double>(rng.NextBounded(20)),
                            static_cast<double>(rng.NextBounded(20)),
                            static_cast<double>(rng.NextBounded(20))});
  }
  const auto strong = SkylineSurvivors(f, SkylineVariant::kStrong);
  const auto full = SkylineSurvivors(f, SkylineVariant::kFullVector);
  for (size_t i = 0; i < f.size(); ++i) {
    if (strong[i]) EXPECT_TRUE(full[i]);
  }
}

}  // namespace
}  // namespace sdp
