// Intra-query parallel enumeration: the contract under test is that
// opt_threads is *invisible* in every observable output.  Plans (byte
// compared), costs (bit compared), SearchCounters, peak memory, typed
// failure statuses and checkpoint ordinals must all be identical to the
// serial run at any thread count -- on healthy runs, under deterministic
// cancellation, under injected cost faults, and through the fallback
// ladder.  parallel_min_pairs is lowered to force the parallel path onto
// test-sized queries.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/budget.h"
#include "common/fault_injection.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "optimizer/dp.h"
#include "optimizer/fallback.h"
#include "optimizer/idp.h"
#include "plan/plan_node.h"
#include "query/topology.h"
#include "service/optimizer_service.h"
#include "service/plan_fingerprint.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

enum class Algo { kDP, kIDP, kSDP };

const char* AlgoName(Algo a) {
  switch (a) {
    case Algo::kDP:
      return "dp";
    case Algo::kIDP:
      return "idp";
    case Algo::kSDP:
      return "sdp";
  }
  return "?";
}

class ParallelEnumTest : public ::testing::Test {
 protected:
  ParallelEnumTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  Query MakeQuery(Topology t, int n, uint64_t seed = 21,
                  bool ordered = false) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = seed;
    spec.ordered = ordered;
    return GenerateWorkload(catalog_, spec).front();
  }

  static OptimizerOptions ThreadedOptions(int threads) {
    OptimizerOptions options;
    options.opt_threads = threads;
    // Force the parallel path onto test-sized levels.
    options.parallel_min_pairs = 1;
    return options;
  }

  static OptimizeResult Run(Algo algo, const Query& q, const CostModel& cost,
                            const OptimizerOptions& options) {
    switch (algo) {
      case Algo::kDP:
        return OptimizeDP(q, cost, options);
      case Algo::kIDP:
        return OptimizeIDP(q, cost, IdpConfig{}, options);
      case Algo::kSDP:
        return OptimizeSDP(q, cost, SdpConfig{}, options);
    }
    return {};
  }

  // Every observable output of a run, serialized byte-exactly.  Shared
  // with the fleet snapshot/broadcast suites via the library helper.
  static std::string Fingerprint(const OptimizeResult& res) {
    return ResultFingerprint(res);
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(ParallelEnumTest, BitIdenticalAcrossAlgorithmsAndThreadCounts) {
  struct Case {
    Topology topology;
    int n;
  };
  const Case cases[] = {{Topology::kStar, 10},
                        {Topology::kChain, 12},
                        {Topology::kStarChain, 11}};
  for (const Case& c : cases) {
    const Query q = MakeQuery(c.topology, c.n);
    CostModel cost(catalog_, stats_, q.graph);
    for (Algo algo : {Algo::kDP, Algo::kIDP, Algo::kSDP}) {
      const OptimizeResult serial =
          Run(algo, q, cost, ThreadedOptions(1));
      ASSERT_TRUE(serial.feasible)
          << AlgoName(algo) << " " << TopologyName(c.topology);
      const std::string want = Fingerprint(serial);
      for (int threads : {2, 4, 8}) {
        const OptimizeResult parallel =
            Run(algo, q, cost, ThreadedOptions(threads));
        EXPECT_EQ(Fingerprint(parallel), want)
            << AlgoName(algo) << " " << TopologyName(c.topology)
            << " threads=" << threads;
      }
    }
  }
}

TEST_F(ParallelEnumTest, OrderedQueriesBitIdentical) {
  const Query q =
      MakeQuery(Topology::kStarChain, 10, /*seed=*/21, /*ordered=*/true);
  CostModel cost(catalog_, stats_, q.graph);
  for (Algo algo : {Algo::kDP, Algo::kSDP}) {
    const std::string want =
        Fingerprint(Run(algo, q, cost, ThreadedOptions(1)));
    EXPECT_EQ(Fingerprint(Run(algo, q, cost, ThreadedOptions(4))), want)
        << AlgoName(algo);
  }
}

// The legacy plans-costed cap trips at a counter value, not a time: the
// infeasibility point must replay identically through the parallel merge.
TEST_F(ParallelEnumTest, LegacyPlanCapTripsIdentically) {
  const Query q = MakeQuery(Topology::kStar, 10);
  CostModel cost(catalog_, stats_, q.graph);
  for (uint64_t cap : {1000u, 25000u, 80000u}) {
    OptimizerOptions serial_options = ThreadedOptions(1);
    serial_options.max_plans_costed = cap;
    OptimizerOptions parallel_options = ThreadedOptions(4);
    parallel_options.max_plans_costed = cap;
    const OptimizeResult serial = OptimizeDP(q, cost, serial_options);
    const OptimizeResult parallel = OptimizeDP(q, cost, parallel_options);
    EXPECT_EQ(Fingerprint(parallel), Fingerprint(serial)) << "cap=" << cap;
  }
}

// Deterministic mid-level cancellation: with cancel_at_checkpoint set, the
// budget trips at an exact checkpoint ordinal.  The parallel run must hit
// the same ordinal with the same counters -- the merge replays every
// budget poll in serial order.
TEST_F(ParallelEnumTest, CancelAtCheckpointMatchesSerial) {
  const Query q = MakeQuery(Topology::kStarChain, 10);
  CostModel cost(catalog_, stats_, q.graph);
  bool saw_cancelled = false;
  for (uint64_t cancel_at : {50u, 500u, 2500u}) {
    auto run = [&](int threads, bool* cancelled) {
      ResourceBudget::Limits limits;
      limits.cancel_at_checkpoint = cancel_at;
      limits.check_interval = 1;
      ResourceBudget budget(limits);
      OptimizerOptions options = ThreadedOptions(threads);
      options.budget = &budget;
      const OptimizeResult res = OptimizeSDP(q, cost, SdpConfig{}, options);
      if (cancelled != nullptr) {
        *cancelled = res.status.code == OptStatusCode::kCancelled;
      }
      std::ostringstream out;
      out << Fingerprint(res) << " checkpoints=" << budget.checkpoints();
      return out.str();
    };
    bool cancelled = false;
    const std::string serial = run(1, &cancelled);
    saw_cancelled |= cancelled;
    EXPECT_EQ(run(4, nullptr), serial) << "N=" << cancel_at;
    EXPECT_EQ(run(8, nullptr), serial) << "N=" << cancel_at;
  }
  EXPECT_TRUE(saw_cancelled);  // At least the smallest N trips mid-run.
}

// Injected NaN costs fire on the Nth TryAdd -- a position in the serial
// candidate stream.  The parallel merge replays every candidate, so the
// fault must land on the same candidate and produce the same outcome
// through the fallback ladder (a plans cap bounds the NaN-polluted rung,
// as in the chaos suite; the cap trip is itself deterministic).
TEST_F(ParallelEnumTest, InjectedCostNanMatchesSerial) {
  const Query q = MakeQuery(Topology::kStarChain, 9);
  CostModel cost(catalog_, stats_, q.graph);
  FallbackConfig config;
  config.start_rung = FallbackRung::kDP;
  config.max_rung = FallbackRung::kGreedy;
  for (uint64_t nth : {100u, 2000u}) {
    auto run = [&](int threads) {
      FaultInjectionScope scope(/*seed=*/7, "cost.nan@" +
                                               std::to_string(nth));
      EXPECT_TRUE(scope.ok()) << scope.error();
      OptimizerOptions options = ThreadedOptions(threads);
      options.max_plans_costed = 50000;
      const OptimizeResult res =
          OptimizeWithFallback(q, cost, config, options);
      return Fingerprint(res) + " rung=" + res.rung;
    };
    const std::string serial = run(1);
    EXPECT_EQ(run(4), serial) << "nth=" << nth;
  }
}

// A real deadline mid-run is inherently timing-dependent; the contract is
// weaker but still hard: a typed status or a valid plan, never a crash,
// at any thread count -- including the cross-thread cancellation path
// where a worker observes the deadline first.
TEST_F(ParallelEnumTest, DeadlineUnderParallelismStaysTyped) {
  const Query q = MakeQuery(Topology::kStarChain, 11);
  CostModel cost(catalog_, stats_, q.graph);
  for (double deadline : {1e-9, 5e-4, 10.0}) {
    ResourceBudget::Limits limits;
    limits.deadline_seconds = deadline;
    ResourceBudget budget(limits);
    budget.Arm();
    OptimizerOptions options = ThreadedOptions(4);
    options.budget = &budget;
    const OptimizeResult res = OptimizeDP(q, cost, options);
    if (res.feasible) {
      EXPECT_TRUE(res.status.ok());
      EXPECT_EQ(ValidatePlanTree(res.plan), "");
    } else {
      EXPECT_EQ(res.status.code, OptStatusCode::kDeadlineExceeded)
          << res.status.ToString();
      EXPECT_EQ(res.plan, nullptr);
    }
  }
}

// The fallback ladder shares one worker pool across rungs; deterministic
// trips (legacy plan cap) escalate identically at any thread count.
TEST_F(ParallelEnumTest, FallbackLadderBitIdentical) {
  const Query q = MakeQuery(Topology::kStarChain, 10);
  CostModel cost(catalog_, stats_, q.graph);
  FallbackConfig config;
  config.start_rung = FallbackRung::kDP;
  config.max_rung = FallbackRung::kGreedy;
  auto run = [&](int threads) {
    OptimizerOptions options = ThreadedOptions(threads);
    options.max_plans_costed = 20000;  // DP trips, later rungs fit.
    const OptimizeResult res = OptimizeWithFallback(q, cost, config, options);
    return Fingerprint(res) + " rung=" + res.rung;
  };
  const std::string serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(8), serial);
}

// Eight-way stress across seeds; doubles as the TSan target for the
// worker/merge machinery.
TEST_F(ParallelEnumTest, EightThreadStressAcrossSeeds) {
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    const Query q = MakeQuery(Topology::kStarChain, 11, seed);
    CostModel cost(catalog_, stats_, q.graph);
    const std::string want =
        Fingerprint(OptimizeSDP(q, cost, SdpConfig{}, ThreadedOptions(1)));
    EXPECT_EQ(
        Fingerprint(OptimizeSDP(q, cost, SdpConfig{}, ThreadedOptions(8))),
        want)
        << "seed=" << seed;
  }
}

// Service plumbing: a request's opt_threads is honored up to the
// configured cap and never changes results (so it stays out of the plan
// cache key).
TEST_F(ParallelEnumTest, ServiceOptThreadsClampedAndInvisible) {
  const Query q = MakeQuery(Topology::kStarChain, 10);

  auto run = [&](int max_opt_threads, int requested) {
    ServiceConfig config;
    config.num_threads = 2;
    config.cache_enabled = false;
    config.max_opt_threads = max_opt_threads;
    OptimizerService service(catalog_, stats_, config);
    ServiceRequest request;
    request.query = q;
    request.spec = AlgorithmSpec::SDP();
    request.options = ThreadedOptions(requested);
    const ServiceResult sr = service.OptimizeSync(std::move(request));
    EXPECT_TRUE(sr.ok()) << sr.error;
    return Fingerprint(sr.result);
  };

  const std::string serial = run(/*max_opt_threads=*/1, /*requested=*/8);
  // Cap honored: requested 8 with cap 4, and uncapped serial, all agree.
  EXPECT_EQ(run(/*max_opt_threads=*/4, /*requested=*/8), serial);
  EXPECT_EQ(run(/*max_opt_threads=*/8, /*requested=*/2), serial);
}

}  // namespace
}  // namespace sdp
