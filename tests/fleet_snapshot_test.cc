#include "fleet/snapshot.h"

#include <gtest/gtest.h>
#include <stdio.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "fleet/wire.h"
#include "service/optimizer_service.h"
#include "service/plan_fingerprint.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// Builds a service, optimizes a few queries, and exports the resulting
// cache -- snapshot tests run against real entries, not synthetic ones.
class FleetSnapshotTest : public ::testing::Test {
 protected:
  FleetSnapshotTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  static ServiceConfig Config(uint64_t epoch) {
    ServiceConfig config;
    config.num_threads = 1;
    config.stats_epoch = epoch;
    return config;
  }

  std::vector<Query> MakeQueries() const {
    WorkloadSpec spec;
    spec.topology = Topology::kChain;
    spec.num_relations = 6;
    spec.num_instances = 4;
    spec.seed = 77;
    return GenerateWorkload(catalog_, spec);
  }

  std::string Path(const std::string& name) const {
    return ::testing::TempDir() + name;
  }

  // Reads/writes whole files for corruption tests.
  static std::string Slurp(const std::string& path) {
    FILE* f = fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string bytes;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    fclose(f);
    return bytes;
  }
  static void Spew(const std::string& path, const std::string& bytes) {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    fclose(f);
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(FleetSnapshotTest, SaveRestoreServesByteIdenticalPlans) {
  OptimizerService source(catalog_, stats_, Config(5));
  std::vector<Query> queries = MakeQueries();
  std::vector<std::string> fingerprints;
  for (const Query& q : queries) {
    ServiceRequest req;
    req.query = q;
    const ServiceResult sr = source.OptimizeSync(std::move(req));
    ASSERT_TRUE(sr.ok());
    ASSERT_FALSE(sr.cache_hit);
    fingerprints.push_back(ResultFingerprint(sr.result));
  }

  const std::string path = Path("roundtrip.snap");
  ASSERT_EQ(SaveCacheSnapshot(path, 5, source.ExportPlanCache()),
            SnapshotStatus::kOk);

  std::vector<PlanCacheExportEntry> entries;
  std::string error;
  ASSERT_EQ(LoadCacheSnapshot(path, 5, &entries, &error),
            SnapshotStatus::kOk)
      << error;
  ASSERT_EQ(entries.size(), queries.size());

  // A fresh service warmed from the snapshot must serve every query as a
  // cache hit whose result fingerprints byte-identically to the one the
  // source computed -- the "restarted replicas rejoin warm" guarantee.
  OptimizerService restored(catalog_, stats_, Config(5));
  for (const PlanCacheExportEntry& e : entries) {
    EXPECT_TRUE(restored.InstallPlanCacheEntry(e));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    ServiceRequest req;
    req.query = queries[i];
    const ServiceResult sr = restored.OptimizeSync(std::move(req));
    ASSERT_TRUE(sr.ok());
    EXPECT_TRUE(sr.cache_hit) << "query " << i << " not served from snapshot";
    EXPECT_EQ(ResultFingerprint(sr.result), fingerprints[i])
        << "query " << i << " plan drifted through snapshot round trip";
  }
}

TEST_F(FleetSnapshotTest, EmptySnapshotRoundTrips) {
  const std::string path = Path("empty.snap");
  ASSERT_EQ(SaveCacheSnapshot(path, 1, {}), SnapshotStatus::kOk);
  std::vector<PlanCacheExportEntry> entries{PlanCacheExportEntry{}};
  ASSERT_EQ(LoadCacheSnapshot(path, 1, &entries), SnapshotStatus::kOk);
  EXPECT_TRUE(entries.empty());
}

TEST_F(FleetSnapshotTest, MissingFileIsTypedIoError) {
  std::vector<PlanCacheExportEntry> entries;
  std::string error;
  EXPECT_EQ(LoadCacheSnapshot(Path("does-not-exist.snap"), 0, &entries,
                              &error),
            SnapshotStatus::kIoError);
  EXPECT_TRUE(entries.empty());
  EXPECT_FALSE(error.empty());
}

TEST_F(FleetSnapshotTest, EpochMismatchRejectsWholeSnapshot) {
  OptimizerService source(catalog_, stats_, Config(5));
  ServiceRequest req;
  req.query = MakeQueries().at(0);
  ASSERT_TRUE(source.OptimizeSync(std::move(req)).ok());

  const std::string path = Path("epoch.snap");
  ASSERT_EQ(SaveCacheSnapshot(path, 5, source.ExportPlanCache()),
            SnapshotStatus::kOk);

  // A stats-epoch bump means every snapshotted plan is suspect; the load
  // must refuse all of them, typed, with nothing partially installed.
  std::vector<PlanCacheExportEntry> entries;
  std::string error;
  EXPECT_EQ(LoadCacheSnapshot(path, 6, &entries, &error),
            SnapshotStatus::kEpochMismatch);
  EXPECT_TRUE(entries.empty());
  // The same bytes at the right epoch still load: the file is fine.
  EXPECT_EQ(LoadCacheSnapshot(path, 5, &entries, &error),
            SnapshotStatus::kOk);
  EXPECT_FALSE(entries.empty());
}

TEST_F(FleetSnapshotTest, CorruptedPayloadByteIsChecksumMismatch) {
  OptimizerService source(catalog_, stats_, Config(2));
  ServiceRequest req;
  req.query = MakeQueries().at(0);
  ASSERT_TRUE(source.OptimizeSync(std::move(req)).ok());
  const std::string path = Path("corrupt.snap");
  ASSERT_EQ(SaveCacheSnapshot(path, 2, source.ExportPlanCache()),
            SnapshotStatus::kOk);

  std::string bytes = Slurp(path);
  ASSERT_GT(bytes.size(), 20u);
  bytes[bytes.size() - 3] ^= 0x40;  // Flip one payload bit.
  Spew(path, bytes);

  std::vector<PlanCacheExportEntry> entries;
  std::string error;
  EXPECT_EQ(LoadCacheSnapshot(path, 2, &entries, &error),
            SnapshotStatus::kChecksumMismatch);
  EXPECT_TRUE(entries.empty());
}

TEST_F(FleetSnapshotTest, ForeignFileIsBadMagic) {
  const std::string path = Path("magic.snap");
  Spew(path, "definitely not a snapshot file, longer than the header");
  std::vector<PlanCacheExportEntry> entries;
  EXPECT_EQ(LoadCacheSnapshot(path, 0, &entries),
            SnapshotStatus::kBadMagic);
  // Too short to even hold the magic.
  Spew(path, "SDP");
  EXPECT_EQ(LoadCacheSnapshot(path, 0, &entries),
            SnapshotStatus::kBadMagic);
}

TEST_F(FleetSnapshotTest, ValidChecksumOverGarbagePayloadIsCorrupt) {
  // Craft a file whose checksum matches its payload but whose payload is
  // not a valid entry stream: the decoder, not the checksum, must catch
  // it -- distinguishing bit rot from writer bugs.
  WireWriter payload;
  payload.PutU32(1);   // version
  payload.PutU64(9);   // stats_epoch
  payload.PutU32(3);   // claims 3 entries...
  payload.PutU8(0x5a);  // ...but delivers garbage.

  WireWriter file;
  file.PutU64(FingerprintHash(payload.bytes()));
  const std::string path = Path("garbage.snap");
  Spew(path, "SDPSNAP1" + file.bytes() + payload.bytes());

  std::vector<PlanCacheExportEntry> entries;
  std::string error;
  EXPECT_EQ(LoadCacheSnapshot(path, 9, &entries, &error),
            SnapshotStatus::kCorrupt);
  EXPECT_TRUE(entries.empty());
}

TEST_F(FleetSnapshotTest, BadVersionIsTyped) {
  WireWriter payload;
  payload.PutU32(99);  // Unknown format version.
  payload.PutU64(0);
  payload.PutU32(0);
  WireWriter file;
  file.PutU64(FingerprintHash(payload.bytes()));
  const std::string path = Path("version.snap");
  Spew(path, "SDPSNAP1" + file.bytes() + payload.bytes());

  std::vector<PlanCacheExportEntry> entries;
  EXPECT_EQ(LoadCacheSnapshot(path, 0, &entries),
            SnapshotStatus::kBadVersion);
}

TEST_F(FleetSnapshotTest, SaveLeavesNoTempFileBehindOnSuccess) {
  const std::string path = Path("clean.snap");
  ASSERT_EQ(SaveCacheSnapshot(path, 0, {}), SnapshotStatus::kOk);
  // The atomic-rename protocol writes <path>.tmp.<pid> then renames; on
  // success the temp name must be gone.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  FILE* f = fopen(tmp.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "temp file left behind: " << tmp;
  if (f != nullptr) fclose(f);
}

}  // namespace
}  // namespace sdp
