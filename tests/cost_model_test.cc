#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/arena.h"
#include "cost/cardinality.h"
#include "query/topology.h"
#include "stats/column_stats.h"

namespace sdp {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)),
        graph_(MakeStarGraph(catalog_, {0, 1, 2, 3, 4})),
        cost_(catalog_, stats_, graph_) {}

  Catalog catalog_;
  StatsCatalog stats_;
  JoinGraph graph_;
  CostModel cost_;
};

TEST_F(CostModelTest, BaseProperties) {
  for (int r = 0; r < graph_.num_relations(); ++r) {
    EXPECT_DOUBLE_EQ(
        cost_.BaseRows(r),
        static_cast<double>(catalog_.table(graph_.table_id(r)).row_count));
    EXPECT_GE(cost_.BasePages(r), 1);
    EXPECT_GT(cost_.SeqScanCost(r), 0);
    // Index scans cost more than sequential scans on the same relation.
    EXPECT_GT(cost_.IndexScanCost(r), cost_.SeqScanCost(r));
  }
}

TEST_F(CostModelTest, SeqScanScalesWithRows) {
  // Larger relations cost more to scan.
  int big = 0, small = 0;
  for (int r = 1; r < graph_.num_relations(); ++r) {
    if (cost_.BaseRows(r) > cost_.BaseRows(big)) big = r;
    if (cost_.BaseRows(r) < cost_.BaseRows(small)) small = r;
  }
  if (cost_.BaseRows(big) > cost_.BaseRows(small)) {
    EXPECT_GT(cost_.SeqScanCost(big), cost_.SeqScanCost(small));
  }
}

TEST_F(CostModelTest, EdgeSelectivityInUnitRange) {
  for (size_t e = 0; e < graph_.edges().size(); ++e) {
    const double sel = cost_.EdgeSelectivity(static_cast<int>(e));
    EXPECT_GT(sel, 0);
    EXPECT_LE(sel, 1);
  }
}

TEST_F(CostModelTest, HashJoinPrefersSmallBuildSide) {
  JoinCostInput small_build;
  small_build.outer_rows = 1e6;
  small_build.outer_width = 100;
  small_build.inner_rows = 100;
  small_build.inner_width = 100;
  small_build.out_rows = 1000;
  JoinCostInput big_build = small_build;
  std::swap(big_build.outer_rows, big_build.inner_rows);
  EXPECT_LT(cost_.HashJoinCost(small_build), cost_.HashJoinCost(big_build));
}

TEST_F(CostModelTest, HashJoinSpillsBeyondWorkMem) {
  JoinCostInput in;
  in.outer_rows = 1000;
  in.outer_width = 100;
  in.inner_width = 100;
  in.out_rows = 1000;
  in.inner_rows = 1000;  // 100 KB: fits in 1 MB work_mem.
  const double in_memory = cost_.HashJoinCost(in);
  in.inner_rows = 100000;  // 10 MB: spills.
  const double spilled = cost_.HashJoinCost(in);
  // Spill adds I/O beyond the pure CPU scaling (100x rows).
  EXPECT_GT(spilled, in_memory * 100);
}

TEST_F(CostModelTest, SortCostMonotoneAndExternalBeyondWorkMem) {
  EXPECT_LT(cost_.SortCost(100, 100), cost_.SortCost(1000, 100));
  // External sort penalty: same row count, widths straddling work_mem.
  const double internal = cost_.SortCost(5000, 100);    // 0.5 MB
  const double external = cost_.SortCost(5000, 10000);  // 50 MB
  EXPECT_GT(external, internal * 2);
}

TEST_F(CostModelTest, IndexNestLoopBeatsHashForSmallOuter) {
  // Find a spoke edge; inner = the spoke (indexed on its join column).
  const int edge = 0;
  const JoinEdge& e = graph_.edges()[edge];
  const int spoke = e.left.rel == 0 ? e.right.rel : e.left.rel;
  const double inl =
      cost_.IndexNestLoopCost(/*outer_cost=*/10, /*outer_rows=*/5, spoke,
                              edge, /*out_rows=*/5);
  JoinCostInput h;
  h.outer_cost = 10;
  h.outer_rows = 5;
  h.outer_width = 100;
  h.inner_cost = cost_.SeqScanCost(spoke);
  h.inner_rows = cost_.BaseRows(spoke);
  h.inner_width = cost_.RowWidth(RelSet::Single(spoke));
  h.out_rows = 5;
  if (cost_.BaseRows(spoke) > 10000) {
    EXPECT_LT(inl, cost_.HashJoinCost(h));
  }
}

TEST_F(CostModelTest, RowWidthAdds) {
  const double w0 = cost_.RowWidth(RelSet::Single(0));
  const double w1 = cost_.RowWidth(RelSet::Single(1));
  EXPECT_DOUBLE_EQ(cost_.RowWidth(RelSet::Single(0).With(1)), w0 + w1);
}

TEST_F(CostModelTest, NestLoopMoreExpensiveThanHashOnBigInputs) {
  JoinCostInput in;
  in.outer_rows = 10000;
  in.outer_width = 100;
  in.inner_rows = 10000;
  in.inner_width = 100;
  in.out_rows = 10000;
  EXPECT_GT(cost_.NestLoopCost(in), cost_.HashJoinCost(in));
}

class CardinalityTest : public CostModelTest {};

TEST_F(CardinalityTest, SingleRelation) {
  CardinalityEstimator card(graph_, cost_, nullptr);
  EXPECT_DOUBLE_EQ(card.Rows(RelSet::Single(2)), cost_.BaseRows(2));
  EXPECT_DOUBLE_EQ(card.Selectivity(RelSet::Single(2)), 1.0);
}

TEST_F(CardinalityTest, PairJoinFormula) {
  CardinalityEstimator card(graph_, cost_, nullptr);
  const RelSet pair = RelSet::Single(0).With(1);
  const std::vector<int> edges = graph_.InternalEdges(pair);
  ASSERT_EQ(edges.size(), 1u);
  const double expected = std::max(
      1.0, cost_.BaseRows(0) * cost_.BaseRows(1) *
               cost_.EdgeSelectivity(edges[0]));
  EXPECT_DOUBLE_EQ(card.Rows(pair), expected);
}

TEST_F(CardinalityTest, SelectivityIsRowsOverCrossProduct) {
  CardinalityEstimator card(graph_, cost_, nullptr);
  const RelSet s = RelSet::Single(0).With(1).With(3);
  const double cross = cost_.BaseRows(0) * cost_.BaseRows(1) *
                       cost_.BaseRows(3);
  EXPECT_NEAR(card.Rows(s) / cross, card.Selectivity(s),
              card.Selectivity(s) * 1e-9);
}

TEST_F(CardinalityTest, CachingIsConsistentAndCharged) {
  MemoryGauge gauge;
  {
    CardinalityEstimator card(graph_, cost_, &gauge);
    const RelSet s = RelSet::Single(0).With(2).With(4);
    const double first = card.Rows(s);
    const double second = card.Rows(s);
    EXPECT_DOUBLE_EQ(first, second);
    EXPECT_EQ(card.cache_entries(), 1u);
    EXPECT_GT(gauge.current_bytes(), 0u);
  }
  EXPECT_EQ(gauge.current_bytes(), 0u);
}

TEST_F(CardinalityTest, SetFunctionIndependentOfBuildOrder) {
  // Rows(S) depends only on S -- the invariant that makes plan-cost ratios
  // comparable across enumeration strategies.
  CardinalityEstimator a(graph_, cost_, nullptr);
  CardinalityEstimator b(graph_, cost_, nullptr);
  const RelSet s = RelSet::FirstN(4);
  // Warm caches in different orders.
  a.Rows(RelSet::Single(0).With(1));
  a.Rows(s);
  b.Rows(RelSet::Single(2).With(3).With(0));
  b.Rows(s);
  EXPECT_DOUBLE_EQ(a.Rows(s), b.Rows(s));
}

}  // namespace
}  // namespace sdp
