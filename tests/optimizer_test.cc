#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "query/topology.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// Recomputes every node's cost and cardinality bottom-up with the cost
// model, verifying the optimizer's stored annotations are self-consistent.
// Returns the recomputed root cost.
double RecomputeCost(const PlanNode* n, const CostModel& cost,
                     const JoinGraph& graph) {
  switch (n->kind) {
    case PlanKind::kSeqScan:
      return cost.SeqScanCost(n->rel);
    case PlanKind::kIndexScan:
      return cost.IndexScanCost(n->rel);
    case PlanKind::kSort:
      return RecomputeCost(n->outer, cost, graph) +
             cost.SortCost(n->outer->rows, cost.RowWidth(n->outer->rels));
    default:
      break;
  }
  const double outer = RecomputeCost(n->outer, cost, graph);
  const double inner = RecomputeCost(n->inner, cost, graph);
  const int num_quals = static_cast<int>(
      graph.ConnectingEdges(n->outer->rels, n->inner->rels).size());
  JoinCostInput in;
  in.outer_cost = outer;
  in.outer_rows = n->outer->rows;
  in.outer_width = cost.RowWidth(n->outer->rels);
  in.inner_cost = inner;
  in.inner_rows = n->inner->rows;
  in.inner_width = cost.RowWidth(n->inner->rels);
  in.out_rows = n->rows;
  in.num_quals = num_quals;
  switch (n->kind) {
    case PlanKind::kHashJoin:
      return cost.HashJoinCost(in);
    case PlanKind::kNestLoop:
      return cost.NestLoopCost(in);
    case PlanKind::kMergeJoin:
      return cost.MergeJoinCost(in);
    case PlanKind::kIndexNestLoop:
      return cost.IndexNestLoopCost(outer, n->outer->rows, n->rel, n->edge,
                                    n->rows);
    default:
      ADD_FAILURE() << "unexpected node";
      return 0;
  }
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  std::vector<Query> Workload(Topology t, int n, int instances,
                              bool ordered = false, uint64_t seed = 21) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = instances;
    spec.ordered = ordered;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec);
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(OptimizerTest, DPSmallChainProducesValidOptimalPlan) {
  for (const Query& q : Workload(Topology::kChain, 5, 5)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult r = OptimizeDP(q, cost);
    ASSERT_TRUE(r.feasible);
    ASSERT_NE(r.plan, nullptr);
    EXPECT_EQ(ValidatePlanTree(r.plan), "");
    EXPECT_EQ(r.plan->rels, q.graph.AllRelations());
    EXPECT_GT(r.counters.plans_costed, 0u);
    EXPECT_NEAR(RecomputeCost(r.plan, cost, q.graph), r.cost,
                r.cost * 1e-9);
  }
}

TEST_F(OptimizerTest, DPPlanCostSelfConsistentAcrossTopologies) {
  for (Topology t : {Topology::kStar, Topology::kCycle, Topology::kClique,
                     Topology::kStarChain}) {
    for (const Query& q : Workload(t, 7, 3)) {
      CostModel cost(catalog_, stats_, q.graph);
      const OptimizeResult r = OptimizeDP(q, cost);
      ASSERT_TRUE(r.feasible);
      EXPECT_EQ(ValidatePlanTree(r.plan), "") << TopologyName(t);
      EXPECT_NEAR(RecomputeCost(r.plan, cost, q.graph), r.cost, r.cost * 1e-9)
          << TopologyName(t);
    }
  }
}

TEST_F(OptimizerTest, DPOptimalInvariantUnderRelabeling) {
  // The optimal cost must not depend on how relations are numbered: rebuild
  // the *same* logical query (same tables, same join columns) with the
  // positions permuted and expect the identical optimum.
  for (const Query& q : Workload(Topology::kStar, 7, 3)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult base = OptimizeDP(q, cost);

    const int n = q.graph.num_relations();
    std::vector<int> perm_of(n);  // position -> new position (reversal).
    for (int i = 0; i < n; ++i) perm_of[i] = n - 1 - i;
    std::vector<int> tables(n);
    for (int i = 0; i < n; ++i) tables[perm_of[i]] = q.graph.table_id(i);
    JoinGraph relabeled(tables);
    for (const JoinEdge& e : q.graph.edges()) {
      relabeled.AddEdge(ColumnRef{perm_of[e.left.rel], e.left.col},
                        ColumnRef{perm_of[e.right.rel], e.right.col});
    }
    Query permuted{std::move(relabeled), std::nullopt};
    CostModel cost2(catalog_, stats_, permuted.graph);
    const OptimizeResult perm = OptimizeDP(permuted, cost2);

    ASSERT_TRUE(base.feasible && perm.feasible);
    EXPECT_NEAR(base.cost, perm.cost, base.cost * 1e-9);
  }
}

TEST_F(OptimizerTest, DPIsNeverBeatenByHeuristics) {
  for (Topology t : {Topology::kStar, Topology::kStarChain}) {
    for (const Query& q : Workload(t, 10, 5)) {
      CostModel cost(catalog_, stats_, q.graph);
      const OptimizeResult dp = OptimizeDP(q, cost);
      const OptimizeResult idp = OptimizeIDP(q, cost, IdpConfig{4});
      ASSERT_TRUE(dp.feasible && idp.feasible);
      EXPECT_LE(dp.cost, idp.cost * (1 + 1e-9));
    }
  }
}

TEST_F(OptimizerTest, DPRespectsMemoryBudget) {
  const Query q = Workload(Topology::kStar, 14, 1).front();
  CostModel cost(catalog_, stats_, q.graph);
  OptimizerOptions tiny;
  tiny.memory_budget_bytes = 64 * 1024;
  const OptimizeResult r = OptimizeDP(q, cost, tiny);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.plan, nullptr);
  EXPECT_TRUE(std::isinf(r.cost));
  // Counters still describe the partial run.
  EXPECT_GT(r.counters.plans_costed, 0u);
}

TEST_F(OptimizerTest, DPRespectsPlanCostingBudget) {
  const Query q = Workload(Topology::kStar, 12, 1).front();
  CostModel cost(catalog_, stats_, q.graph);
  OptimizerOptions opts;
  opts.max_plans_costed = 1000;
  const OptimizeResult r = OptimizeDP(q, cost, opts);
  EXPECT_FALSE(r.feasible);
}

TEST_F(OptimizerTest, OrderByAddsOrderingOrSort) {
  for (const Query& q : Workload(Topology::kStar, 8, 5, /*ordered=*/true)) {
    ASSERT_TRUE(q.order_by.has_value());
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult r = OptimizeDP(q, cost);
    ASSERT_TRUE(r.feasible);
    // The delivered plan must carry the requested ordering.
    const int eq = q.graph.EquivClass(q.order_by->column);
    ASSERT_GE(eq, 0);  // Workload orders by join columns.
    EXPECT_EQ(r.plan->ordering, eq);

    // And it can never be cheaper than the unordered optimum.
    Query unordered{q.graph, std::nullopt};
    const OptimizeResult u = OptimizeDP(unordered, cost);
    EXPECT_GE(r.cost, u.cost - u.cost * 1e-9);
  }
}

TEST_F(OptimizerTest, IDPEqualsDPWhenKCoversQuery) {
  for (const Query& q : Workload(Topology::kStarChain, 8, 4)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    IdpConfig config;
    config.k = 8;  // One block covers everything: IDP degenerates to DP.
    const OptimizeResult idp = OptimizeIDP(q, cost, config);
    ASSERT_TRUE(dp.feasible && idp.feasible);
    EXPECT_NEAR(idp.cost, dp.cost, dp.cost * 1e-9);
  }
}

TEST_F(OptimizerTest, IDPProducesValidPlans) {
  for (int k : {4, 7}) {
    for (const Query& q : Workload(Topology::kStar, 12, 3)) {
      CostModel cost(catalog_, stats_, q.graph);
      const OptimizeResult r = OptimizeIDP(q, cost, IdpConfig{k});
      ASSERT_TRUE(r.feasible);
      EXPECT_EQ(ValidatePlanTree(r.plan), "");
      EXPECT_EQ(r.plan->rels, q.graph.AllRelations());
      EXPECT_NEAR(RecomputeCost(r.plan, cost, q.graph), r.cost,
                  r.cost * 1e-9);
    }
  }
}

TEST_F(OptimizerTest, IDPOrderedPlansDeliverOrdering) {
  for (const Query& q :
       Workload(Topology::kStarChain, 10, 4, /*ordered=*/true)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult r = OptimizeIDP(q, cost, IdpConfig{4});
    ASSERT_TRUE(r.feasible);
    const int eq = q.graph.EquivClass(q.order_by->column);
    EXPECT_EQ(r.plan->ordering, eq);
  }
}

TEST_F(OptimizerTest, IDP2ProducesValidPlansBoundedByDP) {
  for (Topology t : {Topology::kStar, Topology::kStarChain, Topology::kChain,
                     Topology::kSnowflake}) {
    for (const Query& q : Workload(t, 11, 3)) {
      CostModel cost(catalog_, stats_, q.graph);
      const OptimizeResult dp = OptimizeDP(q, cost);
      const OptimizeResult idp2 = OptimizeIDP2(q, cost, IdpConfig{5});
      ASSERT_TRUE(dp.feasible && idp2.feasible);
      EXPECT_EQ(ValidatePlanTree(idp2.plan), "") << TopologyName(t);
      EXPECT_EQ(idp2.plan->rels, q.graph.AllRelations());
      EXPECT_GE(idp2.cost, dp.cost - dp.cost * 1e-9);
    }
  }
}

TEST_F(OptimizerTest, IDP2EqualsDPWhenKCoversQuery) {
  for (const Query& q : Workload(Topology::kStarChain, 8, 3)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult idp2 = OptimizeIDP2(q, cost, IdpConfig{8});
    ASSERT_TRUE(dp.feasible && idp2.feasible);
    EXPECT_NEAR(idp2.cost, dp.cost, dp.cost * 1e-9);
  }
}

TEST_F(OptimizerTest, IDP2OrderedPlansDeliverOrdering) {
  for (const Query& q :
       Workload(Topology::kStar, 10, 3, /*ordered=*/true)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult r = OptimizeIDP2(q, cost, IdpConfig{4});
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.plan->ordering, q.graph.EquivClass(q.order_by->column));
  }
}

TEST_F(OptimizerTest, IDP2RespectsBudget) {
  const Query q = Workload(Topology::kStar, 14, 1).front();
  CostModel cost(catalog_, stats_, q.graph);
  OptimizerOptions tiny;
  tiny.max_plans_costed = 50;
  EXPECT_FALSE(OptimizeIDP2(q, cost, IdpConfig{7}, tiny).feasible);
}

TEST_F(OptimizerTest, IDPCostsFewerPlansThanDP) {
  const Query q = Workload(Topology::kStar, 13, 1).front();
  CostModel cost(catalog_, stats_, q.graph);
  const OptimizeResult dp = OptimizeDP(q, cost);
  const OptimizeResult idp = OptimizeIDP(q, cost, IdpConfig{7});
  ASSERT_TRUE(dp.feasible && idp.feasible);
  EXPECT_LT(idp.counters.plans_costed, dp.counters.plans_costed / 2);
  EXPECT_LT(idp.peak_memory_mb, dp.peak_memory_mb);
}

TEST_F(OptimizerTest, IDPRespectsMemoryBudget) {
  const Query q = Workload(Topology::kStar, 14, 1).front();
  CostModel cost(catalog_, stats_, q.graph);
  OptimizerOptions tiny;
  tiny.memory_budget_bytes = 32 * 1024;
  const OptimizeResult r = OptimizeIDP(q, cost, IdpConfig{7}, tiny);
  EXPECT_FALSE(r.feasible);
}

TEST_F(OptimizerTest, ResultPlanOutlivesOptimizerState) {
  // The result owns its plan via plan_arena; using it after the optimizer
  // internals are gone must be safe (exercised under ASan in CI).
  OptimizeResult r;
  {
    const Query q = Workload(Topology::kChain, 6, 1).front();
    CostModel cost(catalog_, stats_, q.graph);
    r = OptimizeDP(q, cost);
  }
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.plan->TreeSize(), 5);
  EXPECT_FALSE(r.plan->Shape().empty());
}

TEST_F(OptimizerTest, DeterministicResults) {
  const Query q = Workload(Topology::kStarChain, 12, 1).front();
  CostModel cost(catalog_, stats_, q.graph);
  const OptimizeResult a = OptimizeDP(q, cost);
  const OptimizeResult b = OptimizeDP(q, cost);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(a.counters.plans_costed, b.counters.plans_costed);
  EXPECT_EQ(a.plan->Shape(), b.plan->Shape());
}

}  // namespace
}  // namespace sdp
