#include "optimizer/fallback.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/budget.h"
#include "common/fault_injection.h"
#include "cost/cost_model.h"
#include "optimizer/dp.h"
#include "optimizer/heuristic_baselines.h"
#include "plan/plan_node.h"
#include "query/topology.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

TEST(FallbackRungTest, NamesAndParsing) {
  EXPECT_STREQ(FallbackRungName(FallbackRung::kDP), "dp");
  EXPECT_STREQ(FallbackRungName(FallbackRung::kIDP), "idp");
  EXPECT_STREQ(FallbackRungName(FallbackRung::kSDP), "sdp");
  EXPECT_STREQ(FallbackRungName(FallbackRung::kGreedy), "greedy");

  FallbackRung rung;
  EXPECT_TRUE(ParseFallbackRung("idp", &rung));
  EXPECT_EQ(rung, FallbackRung::kIDP);
  EXPECT_FALSE(ParseFallbackRung("IDP", &rung));
  EXPECT_FALSE(ParseFallbackRung("", &rung));
  EXPECT_FALSE(ParseFallbackRung("exhaustive", &rung));
}

TEST(RungBreakerTest, OpensAfterThresholdThenHalfOpens) {
  RungBreaker breaker(/*threshold=*/3, /*cooldown=*/2);
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.open());
  breaker.RecordFailure();  // 3rd consecutive failure: opens.
  EXPECT_TRUE(breaker.open());

  // Cooldown: the next `cooldown` probes are refused.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  // Cooldown spent: one half-open probe gets through.
  EXPECT_TRUE(breaker.Allow());
  // Probe fails: re-opens for another cooldown.
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());
  // Probe succeeds: breaker closes fully.
  breaker.RecordSuccess();
  EXPECT_FALSE(breaker.open());
  EXPECT_TRUE(breaker.Allow());
}

TEST(RungBreakerTest, SuccessResetsConsecutiveCount) {
  RungBreaker breaker(/*threshold=*/3, /*cooldown=*/2);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.open());  // Never 3 in a row.
}

class FallbackLadderTest : public ::testing::Test {
 protected:
  FallbackLadderTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  Query MakeQuery(Topology t, int n, uint64_t seed = 33) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec).front();
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(FallbackLadderTest, NoTripRunsStartRungOnly) {
  const Query q = MakeQuery(Topology::kChain, 8);
  CostModel cost(catalog_, stats_, q.graph);

  FallbackConfig config;
  config.start_rung = FallbackRung::kDP;
  FallbackReport report;
  const OptimizeResult res =
      OptimizeWithFallback(q, cost, config, OptimizerOptions{}, nullptr,
                           &report);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.status.ok());
  EXPECT_EQ(res.rung, "dp");
  EXPECT_EQ(res.retries, 0);
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.attempts[0].rung, FallbackRung::kDP);
  EXPECT_EQ(ValidatePlanTree(res.plan), "");

  // Same cost as a direct DP run.
  const OptimizeResult dp = OptimizeDP(q, cost);
  EXPECT_DOUBLE_EQ(res.cost, dp.cost);
}

TEST_F(FallbackLadderTest, PlansCapEscalatesToCheaperRung) {
  const Query q = MakeQuery(Topology::kStarChain, 10);
  CostModel cost(catalog_, stats_, q.graph);

  // Pick a cap between greedy's effort and DP's so DP must trip but the
  // ladder can still land somewhere.
  const OptimizeResult dp = OptimizeDP(q, cost);
  const OptimizeResult greedy = OptimizeGreedyLeftDeep(q, cost);
  ASSERT_TRUE(dp.feasible && greedy.feasible);
  const uint64_t cap = greedy.counters.plans_costed * 4;
  ASSERT_LT(cap, dp.counters.plans_costed)
      << "query too small to separate greedy from DP";

  ResourceBudget::Limits limits;
  limits.max_plans_costed = cap;
  ResourceBudget budget(limits);
  OptimizerOptions options;
  options.budget = &budget;

  FallbackConfig config;
  config.start_rung = FallbackRung::kDP;
  config.max_rung = FallbackRung::kGreedy;
  FallbackReport report;
  const OptimizeResult res =
      OptimizeWithFallback(q, cost, config, options, nullptr, &report);

  ASSERT_TRUE(res.feasible) << res.status.ToString();
  EXPECT_TRUE(res.status.ok());
  EXPECT_NE(res.rung, "dp");
  EXPECT_GE(res.retries, 1);
  EXPECT_EQ(ValidatePlanTree(res.plan), "");
  ASSERT_GE(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].rung, FallbackRung::kDP);
  EXPECT_EQ(report.attempts[0].status.code, OptStatusCode::kMemoryExceeded);
  // Counters aggregate across attempts: at least the failed DP's effort.
  EXPECT_GE(res.counters.plans_costed, report.attempts[0].plans_costed);
}

TEST_F(FallbackLadderTest, ExpiredDeadlineStopsLadderWithoutEscalating) {
  const Query q = MakeQuery(Topology::kStarChain, 10);
  CostModel cost(catalog_, stats_, q.graph);

  ResourceBudget::Limits limits;
  limits.deadline_seconds = 1e-9;  // Expired by the first slow check.
  limits.check_interval = 1;
  ResourceBudget budget(limits);
  OptimizerOptions options;
  options.budget = &budget;

  FallbackConfig config;
  config.start_rung = FallbackRung::kDP;
  config.max_rung = FallbackRung::kGreedy;
  FallbackReport report;
  const OptimizeResult res =
      OptimizeWithFallback(q, cost, config, options, nullptr, &report);

  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.status.code, OptStatusCode::kDeadlineExceeded);
  // A cheaper rung cannot recover lost time: exactly one attempt.
  EXPECT_EQ(report.attempts.size(), 1u);
}

TEST_F(FallbackLadderTest, CancellationStopsLadderImmediately) {
  const Query q = MakeQuery(Topology::kStarChain, 10);
  CostModel cost(catalog_, stats_, q.graph);

  ResourceBudget::Limits limits;
  limits.cancel_at_checkpoint = 10;
  ResourceBudget budget(limits);
  OptimizerOptions options;
  options.budget = &budget;

  FallbackConfig config;
  config.start_rung = FallbackRung::kDP;
  config.max_rung = FallbackRung::kGreedy;
  FallbackReport report;
  const OptimizeResult res =
      OptimizeWithFallback(q, cost, config, options, nullptr, &report);

  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.status.code, OptStatusCode::kCancelled);
  EXPECT_EQ(report.attempts.size(), 1u);
}

TEST_F(FallbackLadderTest, InjectedAllocFailureBecomesInternalAndEscalates) {
  const Query q = MakeQuery(Topology::kStarChain, 8);
  CostModel cost(catalog_, stats_, q.graph);

  // One-shot std::bad_alloc out of the first arena allocation: the DP rung
  // dies with kInternal, later rungs run clean.
  FaultInjectionScope scope(11, "arena.alloc@1");
  ASSERT_TRUE(scope.ok()) << scope.error();

  FallbackConfig config;
  config.start_rung = FallbackRung::kDP;
  config.max_rung = FallbackRung::kGreedy;
  FallbackReport report;
  const OptimizeResult res = OptimizeWithFallback(
      q, cost, config, OptimizerOptions{}, nullptr, &report);

  ASSERT_TRUE(res.feasible) << res.status.ToString();
  EXPECT_NE(res.rung, "dp");
  EXPECT_GE(res.retries, 1);
  EXPECT_EQ(ValidatePlanTree(res.plan), "");
  ASSERT_GE(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].status.code, OptStatusCode::kInternal);
}

TEST_F(FallbackLadderTest, BreakerSkipsFailingRungButNeverTheLast) {
  const Query q = MakeQuery(Topology::kStarChain, 8);
  CostModel cost(catalog_, stats_, q.graph);

  RungBreakerSet breakers(/*threshold=*/1, /*cooldown=*/100);
  // Force the SDP rung's breaker open.
  breakers.For(FallbackRung::kSDP).RecordFailure();
  ASSERT_TRUE(breakers.For(FallbackRung::kSDP).open());

  // Ladder starting at SDP with greedy reachable: SDP is skipped (breaker)
  // and greedy answers.
  FallbackConfig config;
  config.start_rung = FallbackRung::kSDP;
  config.max_rung = FallbackRung::kGreedy;
  FallbackReport report;
  const OptimizeResult res = OptimizeWithFallback(
      q, cost, config, OptimizerOptions{}, &breakers, &report);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.rung, "greedy");
  EXPECT_EQ(res.retries, 1);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_TRUE(report.attempts[0].skipped_by_breaker);

  // Same open breaker, but SDP is the last reachable rung: it must run
  // anyway -- something has to produce an answer.
  FallbackConfig pinned;
  pinned.start_rung = FallbackRung::kSDP;
  pinned.max_rung = FallbackRung::kSDP;
  FallbackReport report2;
  const OptimizeResult res2 = OptimizeWithFallback(
      q, cost, pinned, OptimizerOptions{}, &breakers, &report2);
  ASSERT_TRUE(res2.feasible);
  EXPECT_EQ(res2.rung, "sdp");
  ASSERT_EQ(report2.attempts.size(), 1u);
  EXPECT_FALSE(report2.attempts[0].skipped_by_breaker);
  // The successful run closed the breaker again.
  EXPECT_FALSE(breakers.For(FallbackRung::kSDP).open());
}

TEST_F(FallbackLadderTest, StartRungDeeperThanMaxRunsStartOnly) {
  const Query q = MakeQuery(Topology::kChain, 6);
  CostModel cost(catalog_, stats_, q.graph);

  FallbackConfig config;
  config.start_rung = FallbackRung::kSDP;
  config.max_rung = FallbackRung::kDP;  // Shallower than start.
  FallbackReport report;
  const OptimizeResult res = OptimizeWithFallback(
      q, cost, config, OptimizerOptions{}, nullptr, &report);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.rung, "sdp");
  EXPECT_EQ(report.attempts.size(), 1u);
}

}  // namespace
}  // namespace sdp
