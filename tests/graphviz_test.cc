#include "query/graphviz.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "optimizer/dp.h"
#include "query/topology.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

TEST(GraphvizTest, JoinGraphDotContainsNodesAndEdges) {
  const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
  const JoinGraph g = MakeStarGraph(catalog, {0, 1, 2, 3});
  const std::string dot = JoinGraphToDot(g, &catalog);
  EXPECT_NE(dot.find("graph join_graph {"), std::string::npos);
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(dot.find("r" + std::to_string(r) + " [label="),
              std::string::npos);
  }
  EXPECT_NE(dot.find("r0 -- r1"), std::string::npos);
  // The hub is highlighted.
  EXPECT_NE(dot.find("lightcoral"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(GraphvizTest, JoinGraphDotWithoutCatalog) {
  const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
  const JoinGraph g = MakeChainGraph(catalog, {0, 1, 2});
  const std::string dot = JoinGraphToDot(g, nullptr);
  EXPECT_NE(dot.find("r2"), std::string::npos);
  // Chains have no hubs: no highlight.
  EXPECT_EQ(dot.find("lightcoral"), std::string::npos);
}

TEST(GraphvizTest, PlanDotRendersTree) {
  const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
  const StatsCatalog stats = SynthesizeStats(catalog);
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 4;
  spec.num_instances = 1;
  const Query q = GenerateWorkload(catalog, spec).front();
  CostModel cost(catalog, stats, q.graph);
  const OptimizeResult r = OptimizeDP(q, cost);
  ASSERT_TRUE(r.feasible);
  const std::string dot = PlanToDot(*r.plan);
  EXPECT_NE(dot.find("digraph plan {"), std::string::npos);
  EXPECT_NE(dot.find("SeqScan"), std::string::npos);
  EXPECT_NE(dot.find("outer"), std::string::npos);
  // One box per plan node.
  size_t boxes = 0;
  for (size_t pos = dot.find("shape=box"); pos != std::string::npos;
       pos = dot.find("shape=box", pos + 1)) {
    ++boxes;
  }
  EXPECT_EQ(static_cast<int>(boxes), r.plan->TreeSize());
}

}  // namespace
}  // namespace sdp
