#include "fleet/wire.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "service/optimizer_service.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// ---------------------------------------------------------------------------
// WireWriter / WireReader primitives

TEST(WireStreamTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-42);
  w.PutI64(-1);
  w.PutDouble(3.141592653589793);
  w.PutDouble(-0.0);
  w.PutString("hello");
  w.PutString("");

  WireReader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI32(), -42);
  EXPECT_EQ(r.GetI64(), -1);
  EXPECT_EQ(r.GetDouble(), 3.141592653589793);
  const double neg_zero = r.GetDouble();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero)) << "-0.0 must survive bit-exactly";
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_EQ(r.GetString(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireStreamTest, ReadPastEndPoisonsReader) {
  WireWriter w;
  w.PutU32(7);
  WireReader r(w.bytes());
  EXPECT_EQ(r.GetU32(), 7u);
  EXPECT_EQ(r.GetU64(), 0u);  // Past the end: zero value, not UB.
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.AtEnd());
  EXPECT_EQ(r.GetU8(), 0u);  // Still poisoned.
}

TEST(WireStreamTest, AbsurdStringLengthFailsCleanly) {
  WireWriter w;
  w.PutU32(0x7fffffff);  // Length prefix far beyond the buffer.
  WireReader r(w.bytes());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Query / request / response codecs

Query MakeQuery() {
  const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 6;
  spec.num_instances = 1;
  spec.seed = 11;
  spec.ordered = true;  // Exercises the order_by leg of the codec.
  return GenerateWorkload(catalog, spec).at(0);
}

TEST(WireCodecTest, QueryRoundTripsExactly) {
  Query q = MakeQuery();
  q.filters.push_back(FilterPredicate{ColumnRef{1, 2}, CompareOp::kLt, 777});

  WireWriter w;
  EncodeQuery(q, &w);
  WireReader r(w.bytes());
  Query out;
  ASSERT_TRUE(DecodeQuery(&r, &out));
  ASSERT_TRUE(r.AtEnd());

  // Re-encoding must be byte-identical: the canonical cache key is
  // computed from the decoded query on the far side, so any drift here
  // is a cross-process cache-placement bug.
  WireWriter w2;
  EncodeQuery(out, &w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
  EXPECT_EQ(out.graph.table_ids(), q.graph.table_ids());
  EXPECT_EQ(out.graph.edges().size(), q.graph.edges().size());
  EXPECT_EQ(out.filters.size(), q.filters.size());
  ASSERT_TRUE(out.order_by.has_value());
  EXPECT_EQ(out.order_by->column.rel, q.order_by->column.rel);
}

TEST(WireCodecTest, FleetRequestRoundTripAndSpec) {
  FleetRequest req;
  req.request_id = 0xfeedfaceULL;
  req.query = MakeQuery();
  req.algo = AlgorithmSpec::Kind::kIDP;
  req.idp_k = 9;

  FleetRequest out;
  ASSERT_TRUE(DecodeFleetRequest(EncodeFleetRequest(req), &out));
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.algo, AlgorithmSpec::Kind::kIDP);
  EXPECT_EQ(out.idp_k, 9);
  EXPECT_EQ(out.Spec().name, AlgorithmSpec::IDP(9).name);
}

TEST(WireCodecTest, RequestDecoderRejectsGarbage) {
  FleetRequest out;
  EXPECT_FALSE(DecodeFleetRequest("", &out));
  EXPECT_FALSE(DecodeFleetRequest("not a request", &out));

  // Trailing garbage after a valid encoding must fail the strict decode.
  FleetRequest req;
  req.query = MakeQuery();
  std::string bytes = EncodeFleetRequest(req);
  bytes.push_back('\0');
  EXPECT_FALSE(DecodeFleetRequest(bytes, &out));

  // Truncation anywhere must fail, never crash.
  const std::string good = EncodeFleetRequest(req);
  for (size_t cut = 0; cut < good.size(); cut += 7) {
    EXPECT_FALSE(DecodeFleetRequest(good.substr(0, cut), &out));
  }
}

TEST(WireCodecTest, ResponseRoundTripsBitPatterns) {
  FleetResponse resp;
  resp.request_id = 42;
  resp.replica_id = 2;
  resp.ok = true;
  resp.cache_hit = true;
  resp.feasible = true;
  resp.status_code = 3;
  resp.retry_after_ms = 125;
  resp.cost_bits = 0x7ff8000000000001ULL;  // A NaN payload must survive.
  resp.rows_bits = 0x8000000000000000ULL;  // -0.0.
  resp.plans_costed = 123456789;
  resp.error = "";
  resp.fingerprint = "feasible=1 cost=0x1.8p+4\nHJ(...)";

  FleetResponse out;
  ASSERT_TRUE(DecodeFleetResponse(EncodeFleetResponse(resp), &out));
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.replica_id, 2);
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.cache_hit);
  EXPECT_EQ(out.status_code, 3);
  EXPECT_EQ(out.cost_bits, 0x7ff8000000000001ULL);
  EXPECT_EQ(out.rows_bits, 0x8000000000000000ULL);
  EXPECT_EQ(out.fingerprint, resp.fingerprint);
}

TEST(WireCodecTest, ReplicaStatsRoundTrip) {
  FleetReplicaStats stats;
  stats.replica_id = 1;
  stats.requests_completed = 10;
  stats.cache_hits = 4;
  stats.cache_misses = 6;
  stats.queue_depth = -0;
  stats.inflight = 2;
  stats.cache_entries = 6;
  stats.cache_bytes = 4096;
  stats.stats_epoch = 3;
  stats.prometheus = "sdp_requests_completed{replica=\"1\"} 10\n";

  FleetReplicaStats out;
  ASSERT_TRUE(DecodeReplicaStats(EncodeReplicaStats(stats), &out));
  EXPECT_EQ(out.replica_id, 1);
  EXPECT_EQ(out.cache_hits, 4u);
  EXPECT_EQ(out.stats_epoch, 3u);
  EXPECT_EQ(out.prometheus, stats.prometheus);
}

// ---------------------------------------------------------------------------
// Cache-entry codec, against entries a real service produced

TEST(WireCodecTest, RealCacheEntryRoundTripsByteExactly) {
  const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
  const StatsCatalog stats = SynthesizeStats(catalog);
  ServiceConfig config;
  config.num_threads = 1;
  OptimizerService service(catalog, stats, config);

  ServiceRequest sreq;
  sreq.query = MakeQuery();
  const ServiceResult sr = service.OptimizeSync(std::move(sreq));
  ASSERT_TRUE(sr.ok());
  ASSERT_TRUE(sr.result.feasible);
  ASSERT_FALSE(sr.cache_key.empty());

  PlanCacheExportEntry entry;
  ASSERT_TRUE(service.ExportPlanCacheEntry(sr.cache_key, &entry));
  ASSERT_FALSE(entry.plan.empty());

  PlanCacheExportEntry decoded;
  ASSERT_TRUE(DecodeCacheEntry(EncodeCacheEntry(entry), &decoded));
  // Byte-exact fidelity: re-encoding the decode reproduces the wire image,
  // which covers every field (plan tree, doubles, perm, orderings) at once.
  EXPECT_EQ(EncodeCacheEntry(decoded), EncodeCacheEntry(entry));
  EXPECT_EQ(decoded.key, entry.key);
  EXPECT_EQ(decoded.form_hash, entry.form_hash);
  EXPECT_EQ(decoded.plan.size(), entry.plan.size());

  PlanCacheExportEntry reject;
  EXPECT_FALSE(DecodeCacheEntry("junk", &reject));
}

// ---------------------------------------------------------------------------
// Frame layer over a real socketpair

TEST(WireFrameTest, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteFrame(fds[0], FrameType::kOptimizeResponse,
                         kFlagFillFollows, "payload-bytes"));
  Frame frame;
  ASSERT_TRUE(ReadFrame(fds[1], &frame));
  EXPECT_EQ(frame.type, FrameType::kOptimizeResponse);
  EXPECT_EQ(frame.flags, kFlagFillFollows);
  EXPECT_EQ(frame.payload, "payload-bytes");

  // Peer close -> clean false, not a hang or crash.
  ::close(fds[0]);
  EXPECT_FALSE(ReadFrame(fds[1], &frame));
  ::close(fds[1]);
}

TEST(WireFrameTest, BadMagicAndOversizedPayloadRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const char bad_magic[8] = {'X', 'Y', 1, 0, 4, 0, 0, 0};
  ASSERT_EQ(::send(fds[0], bad_magic, sizeof(bad_magic), 0),
            static_cast<ssize_t>(sizeof(bad_magic)));
  Frame frame;
  EXPECT_FALSE(ReadFrame(fds[1], &frame));
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Valid magic, payload length far past kMaxFramePayload.
  const unsigned char huge[8] = {'S', 'F', 1, 0, 0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fds[0], huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));
  EXPECT_FALSE(ReadFrame(fds[1], &frame));
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace sdp
