#include "plan/plan_node.h"

#include <gtest/gtest.h>

#include "common/arena.h"

namespace sdp {
namespace {

PlanNode* MakeScan(Arena* arena, int rel, double rows, double cost) {
  PlanNode* n = arena->New<PlanNode>();
  n->kind = PlanKind::kSeqScan;
  n->rel = rel;
  n->rels = RelSet::Single(rel);
  n->rows = rows;
  n->cost = cost;
  return n;
}

PlanNode* MakeJoin(Arena* arena, PlanKind kind, const PlanNode* l,
                   const PlanNode* r) {
  PlanNode* n = arena->New<PlanNode>();
  n->kind = kind;
  n->rels = l->rels.Union(r->rels);
  n->rows = l->rows * r->rows;
  n->cost = l->cost + r->cost + 1;
  n->outer = l;
  n->inner = r;
  return n;
}

TEST(PlanNodeTest, TreeSizeAndShape) {
  Arena arena;
  PlanNode* a = MakeScan(&arena, 0, 10, 1);
  PlanNode* b = MakeScan(&arena, 1, 20, 2);
  PlanNode* c = MakeScan(&arena, 2, 30, 3);
  PlanNode* j1 = MakeJoin(&arena, PlanKind::kHashJoin, a, b);
  PlanNode* j2 = MakeJoin(&arena, PlanKind::kMergeJoin, j1, c);
  EXPECT_EQ(j2->TreeSize(), 5);
  EXPECT_EQ(j2->Shape(), "((R0 HJ R1) MJ R2)");
  EXPECT_TRUE(j2->IsJoin());
  EXPECT_FALSE(j2->IsScan());
}

TEST(PlanNodeTest, ToStringContainsOperators) {
  Arena arena;
  PlanNode* a = MakeScan(&arena, 0, 10, 1);
  PlanNode* b = MakeScan(&arena, 1, 20, 2);
  PlanNode* j = MakeJoin(&arena, PlanKind::kNestLoop, a, b);
  const std::string s = j->ToString();
  EXPECT_NE(s.find("NestLoop"), std::string::npos);
  EXPECT_NE(s.find("SeqScan R0"), std::string::npos);
  EXPECT_NE(s.find("rows="), std::string::npos);
}

TEST(PlanNodeTest, CloneIsDeepAndEqual) {
  Arena arena;
  PlanNode* a = MakeScan(&arena, 0, 10, 1);
  PlanNode* b = MakeScan(&arena, 1, 20, 2);
  PlanNode* j = MakeJoin(&arena, PlanKind::kHashJoin, a, b);

  Arena other;
  const PlanNode* copy = ClonePlanTree(j, &other);
  EXPECT_NE(copy, j);
  EXPECT_NE(copy->outer, j->outer);
  EXPECT_EQ(copy->Shape(), j->Shape());
  EXPECT_DOUBLE_EQ(copy->cost, j->cost);
  EXPECT_EQ(copy->rels, j->rels);
}

TEST(PlanNodeTest, ValidateAcceptsWellFormed) {
  Arena arena;
  PlanNode* a = MakeScan(&arena, 0, 10, 1);
  PlanNode* b = MakeScan(&arena, 1, 20, 2);
  PlanNode* j = MakeJoin(&arena, PlanKind::kHashJoin, a, b);
  EXPECT_EQ(ValidatePlanTree(j), "");
}

TEST(PlanNodeTest, ValidateRejectsOverlappingJoin) {
  Arena arena;
  PlanNode* a = MakeScan(&arena, 0, 10, 1);
  PlanNode* a2 = MakeScan(&arena, 0, 10, 1);
  PlanNode* j = MakeJoin(&arena, PlanKind::kHashJoin, a, a2);
  j->rels = RelSet::Single(0);
  EXPECT_NE(ValidatePlanTree(j), "");
}

TEST(PlanNodeTest, ValidateRejectsBadScan) {
  Arena arena;
  PlanNode* a = MakeScan(&arena, 0, 10, 1);
  a->rels = RelSet::Single(3);  // Mismatch.
  EXPECT_NE(ValidatePlanTree(a), "");
}

TEST(PlanNodeTest, ValidateRejectsNegativeCost) {
  Arena arena;
  PlanNode* a = MakeScan(&arena, 0, 10, -5);
  EXPECT_NE(ValidatePlanTree(a), "");
}

TEST(PlanNodeTest, ValidateSortNode) {
  Arena arena;
  PlanNode* a = MakeScan(&arena, 0, 10, 1);
  PlanNode* sort = arena.New<PlanNode>();
  sort->kind = PlanKind::kSort;
  sort->rels = a->rels;
  sort->rows = a->rows;
  sort->cost = a->cost + 1;
  sort->ordering = 0;
  sort->outer = a;
  EXPECT_EQ(ValidatePlanTree(sort), "");
  sort->ordering = -1;
  EXPECT_NE(ValidatePlanTree(sort), "");
}

TEST(PlanNodeTest, KindNames) {
  EXPECT_STREQ(PlanKindName(PlanKind::kSeqScan), "SeqScan");
  EXPECT_STREQ(PlanKindName(PlanKind::kIndexNestLoop), "IndexNestLoop");
  EXPECT_STREQ(PlanKindName(PlanKind::kSort), "Sort");
}

}  // namespace
}  // namespace sdp
