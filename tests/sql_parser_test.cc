#include "sql/parser.h"

#include <gtest/gtest.h>

namespace sdp {
namespace {

Catalog TestCatalog() {
  Catalog catalog;
  auto make = [&](const std::string& name, uint64_t rows,
                  std::vector<std::string> cols) {
    Table t;
    t.name = name;
    t.row_count = rows;
    for (const auto& c : cols) {
      t.columns.push_back(Column{c, 1000, DataDistribution::kUniform});
    }
    t.indexed_column = 0;
    catalog.AddTable(std::move(t));
  };
  make("orders", 10000, {"o_id", "o_custkey", "o_date"});
  make("customer", 1000, {"c_id", "c_nation"});
  make("nation", 25, {"n_id", "n_region"});
  make("lineitem", 60000, {"l_orderkey", "l_partkey"});
  return catalog;
}

// Return by value: callers pass temporaries.
ParsedQuery Ok(const ParseResult& r) {
  EXPECT_TRUE(std::holds_alternative<ParsedQuery>(r))
      << (std::holds_alternative<ParseError>(r)
              ? std::get<ParseError>(r).message
              : "");
  return std::get<ParsedQuery>(r);
}

ParseError Err(const ParseResult& r) {
  EXPECT_TRUE(std::holds_alternative<ParseError>(r));
  return std::get<ParseError>(r);
}

TEST(SqlParserTest, SimpleTwoWayJoin) {
  const Catalog catalog = TestCatalog();
  const ParseResult r = ParseSelect(
      "SELECT * FROM orders o, customer c WHERE o.o_custkey = c.c_id",
      catalog);
  const ParsedQuery q = Ok(r);
  EXPECT_EQ(q.query.graph.num_relations(), 2);
  EXPECT_EQ(q.query.graph.edges().size(), 1u);
  EXPECT_EQ(q.binding_names, (std::vector<std::string>{"o", "c"}));
  EXPECT_FALSE(q.query.order_by.has_value());
  EXPECT_TRUE(q.select_columns.empty());  // '*'
}

TEST(SqlParserTest, ThreeWayChainWithOrderBy) {
  const Catalog catalog = TestCatalog();
  const ParseResult r = ParseSelect(
      "select o.o_id, n.n_region from orders o, customer c, nation n "
      "where o.o_custkey = c.c_id and c.c_nation = n.n_id "
      "order by c.c_id",
      catalog);
  const ParsedQuery q = Ok(r);
  EXPECT_EQ(q.query.graph.num_relations(), 3);
  EXPECT_EQ(q.query.graph.edges().size(), 2u);
  ASSERT_TRUE(q.query.order_by.has_value());
  EXPECT_EQ(q.query.order_by->column, (ColumnRef{1, 0}));
  ASSERT_EQ(q.select_columns.size(), 2u);
  EXPECT_EQ(q.select_columns[0], (ColumnRef{0, 0}));
  EXPECT_EQ(q.select_columns[1], (ColumnRef{2, 1}));
}

TEST(SqlParserTest, TableWithoutAliasUsesItsName) {
  const Catalog catalog = TestCatalog();
  const ParseResult r = ParseSelect(
      "SELECT * FROM orders, customer WHERE orders.o_custkey = customer.c_id",
      catalog);
  const ParsedQuery q = Ok(r);
  EXPECT_EQ(q.binding_names, (std::vector<std::string>{"orders", "customer"}));
}

TEST(SqlParserTest, SharedJoinColumnsGetImpliedEdges) {
  const Catalog catalog = TestCatalog();
  // o.o_custkey = c.c_id AND o.o_custkey = n.n_id implies c.c_id = n.n_id.
  const ParseResult r = ParseSelect(
      "SELECT * FROM orders o, customer c, nation n "
      "WHERE o.o_custkey = c.c_id AND o.o_custkey = n.n_id",
      catalog);
  const ParsedQuery q = Ok(r);
  EXPECT_EQ(q.query.graph.edges().size(), 3u);
  EXPECT_EQ(q.query.graph.Degree(0), 2);
  EXPECT_EQ(q.query.graph.Degree(1), 2);
  EXPECT_EQ(q.query.graph.Degree(2), 2);
}

TEST(SqlParserTest, KeywordsCaseInsensitive) {
  const Catalog catalog = TestCatalog();
  Ok(ParseSelect(
      "SeLeCt * FrOm orders o, customer c WhErE o.o_custkey = c.c_id "
      "OrDeR bY o.o_id",
      catalog));
}

TEST(SqlParserTest, ErrorUnknownTable) {
  const Catalog catalog = TestCatalog();
  const ParseError e =
      Err(ParseSelect("SELECT * FROM nonexistent", catalog));
  EXPECT_NE(e.message.find("unknown table"), std::string::npos);
}

TEST(SqlParserTest, ErrorUnknownColumn) {
  const Catalog catalog = TestCatalog();
  const ParseError e = Err(ParseSelect(
      "SELECT * FROM orders o, customer c WHERE o.bogus = c.c_id", catalog));
  EXPECT_NE(e.message.find("unknown column"), std::string::npos);
}

TEST(SqlParserTest, ErrorUnknownBinding) {
  const Catalog catalog = TestCatalog();
  const ParseError e = Err(ParseSelect(
      "SELECT * FROM orders o, customer c WHERE x.o_id = c.c_id", catalog));
  EXPECT_NE(e.message.find("unknown binding"), std::string::npos);
}

TEST(SqlParserTest, ErrorDuplicateAlias) {
  const Catalog catalog = TestCatalog();
  const ParseError e = Err(ParseSelect(
      "SELECT * FROM orders o, customer o WHERE o.o_id = o.c_id", catalog));
  EXPECT_NE(e.message.find("duplicate binding"), std::string::npos);
}

TEST(SqlParserTest, ErrorDisconnectedGraph) {
  const Catalog catalog = TestCatalog();
  const ParseError e =
      Err(ParseSelect("SELECT * FROM orders o, customer c", catalog));
  EXPECT_NE(e.message.find("not connected"), std::string::npos);
}

TEST(SqlParserTest, ErrorSelfJoinPredicate) {
  const Catalog catalog = TestCatalog();
  const ParseError e = Err(ParseSelect(
      "SELECT * FROM orders o, customer c "
      "WHERE o.o_id = o.o_custkey AND o.o_id = c.c_id",
      catalog));
  EXPECT_NE(e.message.find("itself"), std::string::npos);
}

TEST(SqlParserTest, ErrorTrailingGarbage) {
  const Catalog catalog = TestCatalog();
  const ParseError e = Err(ParseSelect(
      "SELECT * FROM orders o, customer c WHERE o.o_custkey = c.c_id xyz 42",
      catalog));
  EXPECT_NE(e.message.find("unexpected input"), std::string::npos);
}

TEST(SqlParserTest, ErrorNonEquiJoinBetweenColumns) {
  const Catalog catalog = TestCatalog();
  const ParseError e = Err(ParseSelect(
      "SELECT * FROM orders o, customer c WHERE o.o_custkey < c.c_id",
      catalog));
  EXPECT_NE(e.message.find("equijoin"), std::string::npos);
}

TEST(SqlParserTest, ErrorMissingComparison) {
  const Catalog catalog = TestCatalog();
  const ParseError e = Err(ParseSelect(
      "SELECT * FROM orders o, customer c WHERE o.o_custkey . c.c_id",
      catalog));
  EXPECT_NE(e.message.find("comparison"), std::string::npos);
}

TEST(SqlParserTest, FilterPredicates) {
  const Catalog catalog = TestCatalog();
  const ParseResult r = ParseSelect(
      "SELECT * FROM orders o, customer c "
      "WHERE o.o_custkey = c.c_id AND o.o_date < 100 AND c.c_nation = 7 "
      "AND o.o_id >= -5",
      catalog);
  const ParsedQuery q = Ok(r);
  EXPECT_EQ(q.query.graph.edges().size(), 1u);
  ASSERT_EQ(q.query.filters.size(), 3u);
  EXPECT_EQ(q.query.filters[0].column, (ColumnRef{0, 2}));
  EXPECT_EQ(q.query.filters[0].op, CompareOp::kLt);
  EXPECT_EQ(q.query.filters[0].value, 100);
  EXPECT_EQ(q.query.filters[1].column, (ColumnRef{1, 1}));
  EXPECT_EQ(q.query.filters[1].op, CompareOp::kEq);
  EXPECT_EQ(q.query.filters[2].op, CompareOp::kGe);
  EXPECT_EQ(q.query.filters[2].value, -5);
}

TEST(SqlParserTest, ErrorPositionIsMeaningful) {
  const Catalog catalog = TestCatalog();
  const std::string sql = "SELECT * FROM orders o, bogus b";
  const ParseError e = Err(ParseSelect(sql, catalog));
  EXPECT_EQ(sql.substr(e.position, 5), "bogus");
}

TEST(SqlParserTest, ErrorOversizedIntegerLiteral) {
  // Regression: std::stoll used to throw out_of_range and abort.
  const Catalog catalog = TestCatalog();
  const ParseError e = Err(ParseSelect(
      "SELECT * FROM orders o, customer c WHERE o.o_custkey = c.c_id "
      "AND o.o_id < 99999999999999999999999",
      catalog));
  EXPECT_NE(e.message.find("out of range"), std::string::npos);
}

TEST(SqlParserTest, ErrorUnrecognizedCharacter) {
  // Regression: unknown characters lexed as end-of-input, silently
  // accepting trailing garbage.
  const Catalog catalog = TestCatalog();
  const ParseError e = Err(ParseSelect(
      "SELECT * FROM orders o, customer c WHERE o.o_custkey = c.c_id "
      "% THIS IS GARBAGE",
      catalog));
  EXPECT_NE(e.message.find("unrecognized character '%'"), std::string::npos);
}

TEST(SqlParserTest, StarQueryEndToEnd) {
  // A 3-spoke star through the parser, checked structurally.
  const Catalog catalog = TestCatalog();
  const ParseResult r = ParseSelect(
      "SELECT * FROM lineitem l, orders o, customer c, nation n "
      "WHERE l.l_orderkey = o.o_id AND l.l_partkey = c.c_id "
      "AND l.l_orderkey = n.n_id",
      catalog);
  const ParsedQuery q = Ok(r);
  // l.l_orderkey shared by two predicates: implied edge o-n as well.
  EXPECT_GE(q.query.graph.Degree(0), 3);
}

}  // namespace
}  // namespace sdp
