#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/fault_injection.h"

namespace sdp {
namespace {

TEST(ThreadPoolHardeningTest, TaskExceptionIsCapturedNotFatal) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("task blew up"); });
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Submit([] { throw 42; });  // Non-std exception.
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Shutdown(ThreadPool::ShutdownMode::kDrain);

  EXPECT_EQ(ran.load(), 2);  // The pool kept serving after the throws.
  EXPECT_EQ(pool.tasks_failed(), 2u);
  EXPECT_EQ(pool.last_task_error(), "unknown exception");
}

TEST(ThreadPoolHardeningTest, SubmitAfterShutdownIsRefused) {
  ThreadPool pool(1);
  EXPECT_TRUE(pool.Submit([] {}));
  pool.Shutdown();
  std::atomic<bool> ran{false};
  EXPECT_FALSE(pool.Submit([&ran] { ran.store(true); }));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolHardeningTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&done] { done.fetch_add(1); });
  const ThreadPool::ShutdownStats first = pool.Shutdown();
  const ThreadPool::ShutdownStats second =
      pool.Shutdown(ThreadPool::ShutdownMode::kAbandon);
  EXPECT_EQ(done.load(), 10);
  EXPECT_EQ(first.abandoned_tasks, second.abandoned_tasks);
  EXPECT_EQ(first.deadline_expired, second.deadline_expired);
}

TEST(ThreadPoolHardeningTest, AbandonDropsQueuedTasksButJoins) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Occupy the single worker so the rest of the queue cannot start.
  pool.Submit([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 50; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
  // Give the worker time to pick up the blocker.
  while (pool.queue_depth() > 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true);
  const ThreadPool::ShutdownStats stats =
      pool.Shutdown(ThreadPool::ShutdownMode::kAbandon);
  // The running blocker finished (join waits for running tasks); most or
  // all of the 50 queued tasks were dropped without running.
  EXPECT_EQ(static_cast<int>(stats.abandoned_tasks) + ran.load(), 50);
  EXPECT_FALSE(stats.deadline_expired);
}

TEST(ThreadPoolHardeningTest, DrainDeadlineAbandonsStalledBacklog) {
  // A stalled worker (fault site pool.stall, 300 ms on every task) cannot
  // drain 20 tasks within a 50 ms deadline: Shutdown must give up, drop
  // the backlog, and still join instead of hanging.
  FaultInjectionScope scope(3, "pool.stall%1.0=300");
  ASSERT_TRUE(scope.ok()) << scope.error();

  ThreadPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) pool.Submit([&ran] { ran.fetch_add(1); });

  const auto start = std::chrono::steady_clock::now();
  const ThreadPool::ShutdownStats stats =
      pool.Shutdown(ThreadPool::ShutdownMode::kDrain, /*deadline_seconds=*/0.05);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_TRUE(stats.deadline_expired);
  EXPECT_GT(stats.abandoned_tasks, 0u);
  EXPECT_EQ(static_cast<int>(stats.abandoned_tasks) + ran.load(), 20);
  // Bounded by the deadline plus the one task the worker was stalled on,
  // not by the 20-task backlog (which would be ~6 s).
  EXPECT_LT(elapsed, 2.0);
}

TEST(ThreadPoolHardeningTest, PlainDrainRunsEverythingDespiteStalls) {
  FaultInjectionScope scope(3, "pool.stall%0.5=5");
  ASSERT_TRUE(scope.ok()) << scope.error();
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace sdp
