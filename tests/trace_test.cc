#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <variant>
#include <vector>

#include "core/sdp.h"
#include "cost/cost_model.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "query/graphviz.h"
#include "service/optimizer_service.h"
#include "service/service_metrics.h"
#include "trace/trace_collector.h"
#include "trace/trace_export.h"
#include "workload/workload.h"

namespace sdp {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  Query MakeQuery(Topology topology, int n, uint64_t seed = 7) const {
    WorkloadSpec spec;
    spec.topology = topology;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec).front();
  }

  CostModel MakeCost(const Query& q) const {
    return CostModel(catalog_, stats_, q.graph, CostParams(), q.filters);
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

// Counts events of one payload type in a finished collector.
template <typename T>
int CountEvents(const TraceCollector& collector) {
  int n = 0;
  for (const auto& rec : collector.events()) {
    if (std::get_if<T>(&rec.payload) != nullptr) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Tracing must not perturb the optimization itself.

TEST_F(TraceTest, TracedRunMatchesUntracedRun) {
  const Query q = MakeQuery(Topology::kStarChain, 10);
  const CostModel cost = MakeCost(q);

  TraceCollector collector;
  OptimizerOptions traced;
  traced.tracer = &collector;

  const OptimizeResult plain = OptimizeSDP(q, cost);
  const OptimizeResult traced_r = OptimizeSDP(q, cost, SdpConfig{}, traced);
  ASSERT_TRUE(plain.feasible);
  ASSERT_TRUE(traced_r.feasible);
  EXPECT_EQ(plain.cost, traced_r.cost);
  EXPECT_EQ(plain.counters.plans_costed, traced_r.counters.plans_costed);
  EXPECT_EQ(plain.counters.jcrs_created, traced_r.counters.jcrs_created);
  EXPECT_EQ(plain.counters.pairs_examined, traced_r.counters.pairs_examined);
  EXPECT_EQ(plain.plan->ToString(), traced_r.plan->ToString());
  EXPECT_GT(collector.num_events(), 0u);
}

// ---------------------------------------------------------------------------
// Per-level deltas must reconstruct the run totals exactly: every counter
// increment happens inside some level/balloon/greedy span.

struct LevelSums {
  uint64_t plans = 0, jcrs = 0, pairs = 0;
  int begins = 0, ends = 0;
};

LevelSums SumLevels(const TraceCollector& collector) {
  LevelSums s;
  for (const auto& rec : collector.events()) {
    if (const auto* e = std::get_if<TraceLevelEnd>(&rec.payload)) {
      s.plans += e->plans_costed;
      s.jcrs += e->jcrs_created;
      s.pairs += e->pairs_examined;
      ++s.ends;
    } else if (std::get_if<TraceLevelBegin>(&rec.payload) != nullptr) {
      ++s.begins;
    }
  }
  return s;
}

TEST_F(TraceTest, LevelDeltasSumToRunTotals) {
  const Query q = MakeQuery(Topology::kStarChain, 10);
  const CostModel cost = MakeCost(q);

  TraceCollector dp_c, idp_c, idp2_c, sdp_c;
  OptimizerOptions dp_o, idp_o, idp2_o, sdp_o;
  dp_o.tracer = &dp_c;
  idp_o.tracer = &idp_c;
  idp2_o.tracer = &idp2_c;
  sdp_o.tracer = &sdp_c;
  const OptimizeResult dp = OptimizeDP(q, cost, dp_o);
  const OptimizeResult idp = OptimizeIDP(q, cost, IdpConfig{4}, idp_o);
  const OptimizeResult idp2 = OptimizeIDP2(q, cost, IdpConfig{4}, idp2_o);
  const OptimizeResult sdp = OptimizeSDP(q, cost, SdpConfig{}, sdp_o);

  const struct {
    const char* name;
    const OptimizeResult& r;
    const TraceCollector& c;
  } rows[] = {{"DP", dp, dp_c},
              {"IDP", idp, idp_c},
              {"IDP2", idp2, idp2_c},
              {"SDP", sdp, sdp_c}};
  for (const auto& row : rows) {
    ASSERT_TRUE(row.r.feasible) << row.name;
    const LevelSums sums = SumLevels(row.c);
    EXPECT_EQ(sums.plans, row.r.counters.plans_costed) << row.name;
    EXPECT_EQ(sums.jcrs, row.r.counters.jcrs_created) << row.name;
    EXPECT_EQ(sums.pairs, row.r.counters.pairs_examined) << row.name;
    EXPECT_EQ(sums.begins, sums.ends) << row.name;
    EXPECT_EQ(CountEvents<TraceRunBegin>(row.c), 1) << row.name;
    EXPECT_EQ(CountEvents<TraceRunEnd>(row.c), 1) << row.name;
  }
}

// ---------------------------------------------------------------------------
// SDP-specific events.

TEST_F(TraceTest, PruneSummariesAndPartitionsAreConsistent) {
  const Query q = MakeQuery(Topology::kStar, 12);
  const CostModel cost = MakeCost(q);

  TraceCollector collector;
  OptimizerOptions o;
  o.tracer = &collector;
  const OptimizeResult r = OptimizeSDP(q, cost, SdpConfig{}, o);
  ASSERT_TRUE(r.feasible);

  int prune_levels = 0;
  int partitions_seen = 0;
  int partitions_declared = 0;
  for (const auto& rec : collector.events()) {
    if (const auto* p = std::get_if<TracePruneLevel>(&rec.payload)) {
      ++prune_levels;
      EXPECT_EQ(p->prune_group + p->free_group, p->jcrs);
      EXPECT_LE(p->pruned, p->prune_group);
      EXPECT_GE(p->pruned, 0);
      partitions_declared += p->partitions;
    } else if (const auto* part = std::get_if<TracePartition>(&rec.payload)) {
      ++partitions_seen;
      ASSERT_FALSE(part->members.empty());
      int survivors = 0;
      for (const TracePartitionMember& m : part->members) {
        // Under the pairwise-union skyline, survival is exactly membership
        // in at least one of the three 2-D skylines.
        EXPECT_EQ(m.survived, m.in_rc || m.in_cs || m.in_rs);
        if (m.survived) ++survivors;
      }
      EXPECT_GE(survivors, 1) << "a skyline never prunes everything";
    }
  }
  // A 12-relation star prunes at several levels and applies at least one
  // partition per pruned level.
  EXPECT_GT(prune_levels, 0);
  EXPECT_GT(partitions_seen, 0);
  EXPECT_EQ(partitions_seen, partitions_declared);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST_F(TraceTest, JsonlIsByteIdenticalAcrossRuns) {
  const Query q = MakeQuery(Topology::kStarChain, 9);
  const CostModel cost = MakeCost(q);

  auto run = [&]() {
    TraceCollector collector;
    OptimizerOptions o;
    o.tracer = &collector;
    const OptimizeResult r = OptimizeSDP(q, cost, SdpConfig{}, o);
    EXPECT_TRUE(r.feasible);
    return ExportJsonl(collector);
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(TraceTest, JsonlTimingFieldsAreOptIn) {
  const Query q = MakeQuery(Topology::kChain, 6);
  const CostModel cost = MakeCost(q);
  TraceCollector collector;
  OptimizerOptions o;
  o.tracer = &collector;
  OptimizeDP(q, cost, o);

  EXPECT_EQ(ExportJsonl(collector).find("\"ts\""), std::string::npos);
  JsonlOptions timing;
  timing.include_timing = true;
  EXPECT_NE(ExportJsonl(collector, timing).find("\"ts\""), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceHasBalancedSpans) {
  const Query q = MakeQuery(Topology::kStarChain, 10);
  const CostModel cost = MakeCost(q);
  TraceCollector collector;
  OptimizerOptions o;
  o.tracer = &collector;
  OptimizeSDP(q, cost, SdpConfig{}, o);

  const std::string trace = ExportChromeTrace(collector);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  auto count = [&](const std::string& needle) {
    int n = 0;
    for (size_t pos = trace.find(needle); pos != std::string::npos;
         pos = trace.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  const int begins = count("\"ph\":\"B\"");
  const int ends = count("\"ph\":\"E\"");
  EXPECT_GT(begins, 0);
  EXPECT_EQ(begins, ends);
}

TEST_F(TraceTest, ReportSummarizesTheSearch) {
  const Query q = MakeQuery(Topology::kStar, 10);
  const CostModel cost = MakeCost(q);
  TraceCollector collector;
  OptimizerOptions o;
  o.tracer = &collector;
  const OptimizeResult r = OptimizeSDP(q, cost, SdpConfig{}, o);
  ASSERT_TRUE(r.feasible);

  const std::string report = ExportReport(collector);
  EXPECT_NE(report.find("SDP"), std::string::npos);
  EXPECT_NE(report.find("level"), std::string::npos);
  EXPECT_NE(report.find(std::to_string(r.counters.plans_costed)),
            std::string::npos)
      << "run totals must appear in the report";
}

TEST_F(TraceTest, AnnotationsReconstructHubsAndSelectivities) {
  const Query q = MakeQuery(Topology::kStar, 8);
  const CostModel cost = MakeCost(q);
  TraceCollector collector;
  OptimizerOptions o;
  o.tracer = &collector;
  OptimizeSDP(q, cost, SdpConfig{}, o);

  const auto ann = AnnotationsFromTrace(collector);
  ASSERT_TRUE(ann.has_value());
  // A star's center has degree n-1 >= hub_degree.
  EXPECT_FALSE(ann->hub_relations.empty());
  EXPECT_EQ(ann->edge_selectivities.size(), q.graph.edges().size());

  const std::string dot = JoinGraphToDot(q.graph, &catalog_, &*ann);
  EXPECT_NE(dot.find("sel="), std::string::npos);
  EXPECT_NE(dot.find("hub"), std::string::npos);

  EXPECT_FALSE(AnnotationsFromTrace(TraceCollector{}).has_value());
}

// ---------------------------------------------------------------------------
// Service integration: cache traffic events.

TEST_F(TraceTest, ServiceEmitsCacheEvents) {
  TraceCollector collector;
  ServiceConfig config;
  config.num_threads = 1;
  config.tracer = &collector;
  OptimizerService service(catalog_, stats_, config);

  ServiceRequest request;
  request.query = MakeQuery(Topology::kStarChain, 8);
  const ServiceResult first = service.OptimizeSync(request);
  const ServiceResult second = service.OptimizeSync(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);

  int miss = 0, fill = 0, hit = 0;
  std::string key_on_hit, key_on_miss;
  for (const auto& rec : collector.events()) {
    const auto* e = std::get_if<TraceCacheEvent>(&rec.payload);
    if (e == nullptr) continue;
    const std::string kind = e->kind;
    if (kind == "miss") {
      ++miss;
      key_on_miss = e->key;
    } else if (kind == "fill") {
      ++fill;
    } else if (kind == "hit") {
      ++hit;
      key_on_hit = e->key;
    }
  }
  EXPECT_EQ(miss, 1);
  EXPECT_EQ(fill, 1);
  EXPECT_EQ(hit, 1);
  EXPECT_EQ(key_on_hit, key_on_miss);
  // The service tracer also observes the worker-side search itself.
  EXPECT_EQ(CountEvents<TraceRunBegin>(collector), 1);
}

// ---------------------------------------------------------------------------
// Latency histogram + Prometheus exposition.

TEST(LatencyHistogramTest, ExactSumAndCount) {
  LatencyHistogram h;
  h.Record(0.001);
  h.Record(0.002);
  h.Record(0.004);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.SumSeconds(), 0.007, 1e-6);
}

TEST(LatencyHistogramTest, QuantileInterpolatesWithinBucket) {
  LatencyHistogram h;
  // 100 samples of 1000us all land in the [512, 1024)us bucket; the median
  // must interpolate inside that bucket, not snap to its bound.
  for (int i = 0; i < 100; ++i) h.Record(0.001);
  const double p50 = h.QuantileMs(0.5);
  EXPECT_GT(p50, 0.512);
  EXPECT_LT(p50, 1.024);
  // Monotone in q.
  EXPECT_LE(h.QuantileMs(0.1), h.QuantileMs(0.9));
}

TEST(LatencyHistogramTest, CumulativeBucketsAreMonotoneAndComplete) {
  LatencyHistogram h;
  h.Record(0.0001);
  h.Record(0.01);
  h.Record(1.0);
  const auto buckets = h.CumulativeBuckets();
  ASSERT_EQ(buckets.size(), static_cast<size_t>(LatencyHistogram::kBuckets));
  uint64_t prev = 0;
  for (const auto& b : buckets) {
    EXPECT_GE(b.cumulative, prev);
    prev = b.cumulative;
  }
  EXPECT_TRUE(std::isinf(buckets.back().le_seconds));
  EXPECT_EQ(buckets.back().cumulative, h.count());
}

TEST(ServiceMetricsTest, PrometheusTextIsWellFormed) {
  ServiceMetrics metrics;
  metrics.requests_submitted.store(5);
  metrics.cache_hits.store(2);
  metrics.optimize_latency.Record(0.003);
  const std::string text = metrics.PrometheusText();

  EXPECT_NE(text.find("# TYPE sdp_service_requests_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sdp_service_requests_submitted_total 5"),
            std::string::npos);
  EXPECT_NE(text.find("sdp_service_cache_hits_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sdp_service_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE sdp_service_optimize_latency_seconds histogram"),
      std::string::npos);
  EXPECT_NE(text.find("sdp_service_optimize_latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("sdp_service_optimize_latency_seconds_count 1"),
            std::string::npos);
  // Every HELP line is paired with a TYPE line.
  size_t helps = 0, types = 0;
  for (size_t pos = text.find("# HELP"); pos != std::string::npos;
       pos = text.find("# HELP", pos + 1)) {
    ++helps;
  }
  for (size_t pos = text.find("# TYPE"); pos != std::string::npos;
       pos = text.find("# TYPE", pos + 1)) {
    ++types;
  }
  EXPECT_EQ(helps, types);
  EXPECT_EQ(text.back(), '\n');
}

}  // namespace
}  // namespace sdp
