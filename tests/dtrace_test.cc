// Distributed-tracing tests: trace-id minting and span scopes
// (obs/dtrace.h), the wire frame's trace-context extension under
// truncation and mixed-version fleets (fleet/wire.h), the SLO watchdog's
// multi-window burn-rate math under a fake clock (obs/slo.h), and the
// service-level guarantee that an injected SLO burn writes exactly one
// correlated flight-recorder dump.

#include "obs/dtrace.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/fault_injection.h"
#include "fleet/wire.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "service/optimizer_service.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// ---------------------------------------------------------------------------
// Trace identity minting

TEST(DtraceIdTest, MintIsDeterministicNeverZeroAndWellSpread) {
  EXPECT_EQ(MintTraceId(1, 2), MintTraceId(1, 2));
  EXPECT_NE(MintTraceId(1, 2), MintTraceId(2, 2));
  EXPECT_NE(MintTraceId(1, 2), MintTraceId(1, 3));

  // Never 0 (0 means "no trace"), and no collisions over a real sweep of
  // request ids against one routing key.
  std::set<uint64_t> seen;
  const uint64_t key_hash = DtraceHash("canonical-key|sdp");
  for (uint64_t req = 0; req < 4096; ++req) {
    const uint64_t id = MintTraceId(req, key_hash);
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(DtraceIdTest, HashAndMixAreStableFunctions) {
  EXPECT_EQ(DtraceHash("abc"), DtraceHash("abc"));
  EXPECT_NE(DtraceHash("abc"), DtraceHash("abd"));
  EXPECT_NE(DtraceHash(""), 0u);  // FNV offset basis, not zero.
  EXPECT_EQ(DtraceMix64(42), DtraceMix64(42));
  EXPECT_NE(DtraceMix64(42), DtraceMix64(43));
}

TEST(DtraceIdTest, HexRoundTripAndParseFallbacks) {
  const uint64_t id = MintTraceId(7, DtraceHash("k"));
  const std::string hex = TraceIdHex(id);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(ParseTraceId(hex), id);
  EXPECT_EQ(TraceIdHex(0), "0000000000000000");
  EXPECT_EQ(ParseTraceId("0000000000000000"), 0u);

  // Decimal fallback and garbage rejection.
  EXPECT_EQ(ParseTraceId("12345"), 12345u);
  EXPECT_EQ(ParseTraceId(""), 0u);
  EXPECT_EQ(ParseTraceId("not-a-trace-id"), 0u);
}

// ---------------------------------------------------------------------------
// Span scopes

TEST(DtraceSpanScopeTest, InstallsNestsAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().active());
  {
    SpanScope outer(TraceContext{10, kRouterRootSpan});
    EXPECT_TRUE(CurrentTraceContext().active());
    EXPECT_EQ(CurrentTraceContext().trace_id, 10u);
    EXPECT_EQ(CurrentTraceContext().span_id, kRouterRootSpan);
    {
      SpanScope inner(TraceContext{10, kAttemptSpanBase + 1});
      EXPECT_EQ(CurrentTraceContext().span_id, kAttemptSpanBase + 1);
    }
    EXPECT_EQ(CurrentTraceContext().span_id, kRouterRootSpan);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
}

TEST(DtraceSpanScopeTest, ContextIsThreadLocal) {
  SpanScope scope(TraceContext{99, 1});
  TraceContext other{1, 1};
  std::thread t([&other] { other = CurrentTraceContext(); });
  t.join();
  EXPECT_FALSE(other.active()) << "trace context leaked across threads";
  EXPECT_EQ(CurrentTraceContext().trace_id, 99u);
}

TEST(DtraceSpanScopeTest, RecorderTagsEventsWithActiveContext) {
  FlightRecorder::Global().ResetForTesting();
  FlightRecorder::Global().Enable(true);
  {
    SpanScope scope(TraceContext{77, kAttemptSpanBase});
    FlightRecorder::Global().Record(ObsKind::kCacheHit, 0, 0, 123);
  }
  FlightRecorder::Global().Record(ObsKind::kCacheMiss, 0, 0, 456);
  const ObsSnapshot snap = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.events[0].trace_id, 77u);
  EXPECT_EQ(snap.events[0].span_id, kAttemptSpanBase);
  EXPECT_EQ(snap.events[1].trace_id, 0u) << "event outside any span tagged";
  FlightRecorder::Global().Enable(false);
  FlightRecorder::Global().ResetForTesting();
}

// ---------------------------------------------------------------------------
// Wire frame trace-context extension

Frame MakeTracedFrame() {
  Frame f;
  f.type = FrameType::kOptimizeRequest;
  f.payload = "request-payload";
  f.has_trace = true;
  f.trace_id = MintTraceId(3, DtraceHash("key"));
  f.span_id = kAttemptSpanBase;
  return f;
}

Frame MakeLegacyFrame() {
  Frame f;
  f.type = FrameType::kOptimizeResponse;
  f.payload = "legacy-payload";
  return f;
}

TEST(FrameTraceContextTest, TracedFrameRoundTripsAndSizesExactly) {
  const Frame in = MakeTracedFrame();
  const std::string bytes = EncodeFrameBytes(in);
  // Header (8) + trace extension (16) + payload; payload_len (header
  // offset 4, LE) must EXCLUDE the extension so old and new frames with
  // the same payload agree on the length field.
  ASSERT_EQ(bytes.size(), 8 + 16 + in.payload.size());
  const uint32_t payload_len =
      static_cast<uint8_t>(bytes[4]) |
      (static_cast<uint32_t>(static_cast<uint8_t>(bytes[5])) << 8) |
      (static_cast<uint32_t>(static_cast<uint8_t>(bytes[6])) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(bytes[7])) << 24);
  EXPECT_EQ(payload_len, in.payload.size());
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]) & kFlagTraceContext,
            kFlagTraceContext);

  size_t pos = 0;
  Frame out;
  ASSERT_TRUE(DecodeFrameBytes(bytes, &pos, &out));
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(out.type, in.type);
  EXPECT_TRUE(out.has_trace);
  EXPECT_EQ(out.trace_id, in.trace_id);
  EXPECT_EQ(out.span_id, in.span_id);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(FrameTraceContextTest, LegacyFrameStaysByteCompatible) {
  const Frame in = MakeLegacyFrame();
  const std::string bytes = EncodeFrameBytes(in);
  ASSERT_EQ(bytes.size(), 8 + in.payload.size());  // No extension.
  size_t pos = 0;
  Frame out;
  ASSERT_TRUE(DecodeFrameBytes(bytes, &pos, &out));
  EXPECT_FALSE(out.has_trace);
  EXPECT_EQ(out.trace_id, 0u);
  EXPECT_EQ(out.span_id, 0u);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(FrameTraceContextTest, TruncationSweepFailsWithoutAdvancing) {
  // EVERY strict prefix of both framings must fail cleanly and leave
  // *pos untouched -- a short read mid-extension must never desync.
  for (const Frame& frame : {MakeTracedFrame(), MakeLegacyFrame()}) {
    const std::string bytes = EncodeFrameBytes(frame);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      size_t pos = 0;
      Frame out;
      EXPECT_FALSE(DecodeFrameBytes(bytes.substr(0, cut), &pos, &out))
          << "decoded a " << cut << "-byte prefix (has_trace="
          << frame.has_trace << ")";
      EXPECT_EQ(pos, 0u) << "cursor moved on failed decode at cut " << cut;
    }
  }
}

TEST(FrameTraceContextTest, BadMagicAndOversizedPayloadRejected) {
  std::string bytes = EncodeFrameBytes(MakeTracedFrame());
  bytes[0] = 'X';
  size_t pos = 0;
  Frame out;
  EXPECT_FALSE(DecodeFrameBytes(bytes, &pos, &out));
  EXPECT_EQ(pos, 0u);

  bytes = EncodeFrameBytes(MakeTracedFrame());
  // payload_len far beyond kMaxFramePayload.
  bytes[4] = bytes[5] = bytes[6] = bytes[7] = static_cast<char>(0xff);
  pos = 0;
  EXPECT_FALSE(DecodeFrameBytes(bytes, &pos, &out));
  EXPECT_EQ(pos, 0u);
}

TEST(FrameTraceContextTest, ZeroTraceIdsDecodeAsInactiveContext) {
  // A peer may set the flag with all-zero ids; that must decode (the
  // extension is consumed) and mean "no trace" downstream.
  Frame in = MakeTracedFrame();
  in.trace_id = 0;
  in.span_id = 0;
  const std::string bytes = EncodeFrameBytes(in);
  size_t pos = 0;
  Frame out;
  ASSERT_TRUE(DecodeFrameBytes(bytes, &pos, &out));
  EXPECT_TRUE(out.has_trace);
  EXPECT_FALSE((TraceContext{out.trace_id, out.span_id}.active()));
}

TEST(FrameTraceContextTest, DuplicateTraceIdsDecodeIndependently) {
  // Two frames reusing one trace id (a retry, or a replayed request)
  // each decode with the full context -- nothing is deduplicated at the
  // framing layer.
  const Frame a = MakeTracedFrame();
  Frame b = MakeTracedFrame();
  b.payload = "second-attempt";
  b.span_id = kAttemptSpanBase + 1;
  const std::string bytes = EncodeFrameBytes(a) + EncodeFrameBytes(b);
  size_t pos = 0;
  Frame out_a;
  Frame out_b;
  ASSERT_TRUE(DecodeFrameBytes(bytes, &pos, &out_a));
  ASSERT_TRUE(DecodeFrameBytes(bytes, &pos, &out_b));
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(out_a.trace_id, out_b.trace_id);
  EXPECT_EQ(out_a.span_id, kAttemptSpanBase);
  EXPECT_EQ(out_b.span_id, kAttemptSpanBase + 1);
  EXPECT_EQ(out_b.payload, "second-attempt");
}

TEST(FrameTraceContextTest, MixedVersionStreamDecodesInSequence) {
  // A mixed fleet interleaves old-style (context-free) and traced frames
  // on one stream; the decoder must walk the sequence without desyncing.
  const std::string bytes = EncodeFrameBytes(MakeLegacyFrame()) +
                            EncodeFrameBytes(MakeTracedFrame()) +
                            EncodeFrameBytes(MakeLegacyFrame());
  size_t pos = 0;
  Frame out;
  ASSERT_TRUE(DecodeFrameBytes(bytes, &pos, &out));
  EXPECT_FALSE(out.has_trace);
  ASSERT_TRUE(DecodeFrameBytes(bytes, &pos, &out));
  EXPECT_TRUE(out.has_trace);
  EXPECT_NE(out.trace_id, 0u);
  ASSERT_TRUE(DecodeFrameBytes(bytes, &pos, &out));
  EXPECT_FALSE(out.has_trace);
  EXPECT_EQ(pos, bytes.size());

  // And a truncated tail after valid frames: the good prefix decodes,
  // the stub fails with the cursor parked at the last frame boundary.
  const std::string trailing = bytes + EncodeFrameBytes(MakeTracedFrame())
                                           .substr(0, 12);
  pos = 0;
  ASSERT_TRUE(DecodeFrameBytes(trailing, &pos, &out));
  ASSERT_TRUE(DecodeFrameBytes(trailing, &pos, &out));
  ASSERT_TRUE(DecodeFrameBytes(trailing, &pos, &out));
  const size_t boundary = pos;
  EXPECT_FALSE(DecodeFrameBytes(trailing, &pos, &out));
  EXPECT_EQ(pos, boundary);
}

TEST(FrameTraceContextTest, MixedVersionFramesOverRealSocket) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const uint64_t trace_id = MintTraceId(11, DtraceHash("socket"));
  ASSERT_TRUE(WriteFrame(fds[0], FrameType::kPing, 0, "old"));
  ASSERT_TRUE(WriteFrameTraced(fds[0], FrameType::kOptimizeRequest, 0,
                               "new", trace_id, kAttemptSpanBase + 2));
  Frame frame;
  ASSERT_TRUE(ReadFrame(fds[1], &frame));
  EXPECT_FALSE(frame.has_trace);
  EXPECT_EQ(frame.payload, "old");
  ASSERT_TRUE(ReadFrame(fds[1], &frame));
  EXPECT_TRUE(frame.has_trace);
  EXPECT_EQ(frame.trace_id, trace_id);
  EXPECT_EQ(frame.span_id, kAttemptSpanBase + 2);
  EXPECT_EQ(frame.payload, "new");
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// SLO burn-rate math under a fake clock

SloConfig QualitySlo() {
  SloConfig config;
  config.quality_ratio = 2.0;
  config.error_budget = 0.1;
  config.fast_window_seconds = 10;
  config.slow_window_seconds = 60;
  config.fast_burn_threshold = 2.0;
  config.slow_burn_threshold = 1.0;
  return config;
}

TEST(SloTrackerTest, DisabledConfigRecordsNothing) {
  SloConfig config;  // All objectives off.
  EXPECT_FALSE(config.enabled());
  SloTracker slo(config);
  SloTracker::Burn burn;
  EXPECT_FALSE(slo.RecordQuality(100.0, 1, 0.0, &burn));
  EXPECT_FALSE(slo.RecordLatency(0, 100.0, 1, 0.0, &burn));
  EXPECT_EQ(slo.samples(SloTracker::kQualityObjective), 0u);
}

TEST(SloTrackerTest, FirstViolationBurnsWhenBothWindowsExceed) {
  SloTracker slo(QualitySlo());
  SloTracker::Burn burn;
  // One violating sample: both windows hold 1 violation / 1 sample, so
  // burn = (1/1)/0.1 = 10 >= both thresholds -> edge on the first sample.
  ASSERT_TRUE(slo.RecordQuality(5.0, /*request_id=*/7, /*now=*/100.0, &burn));
  EXPECT_EQ(burn.objective, SloTracker::kQualityObjective);
  EXPECT_EQ(burn.rung, 0);
  EXPECT_DOUBLE_EQ(burn.threshold, 2.0);
  EXPECT_DOUBLE_EQ(burn.observed, 5.0);
  EXPECT_DOUBLE_EQ(burn.fast_burn, 10.0);
  EXPECT_DOUBLE_EQ(burn.slow_burn, 10.0);
  EXPECT_EQ(burn.request_id, 7u);
  EXPECT_TRUE(slo.Burning(SloTracker::kQualityObjective));
  EXPECT_EQ(slo.burns_total(), 1u);
  EXPECT_EQ(std::string(SloTracker::ObjectiveName(burn.objective)),
            "quality");
}

TEST(SloTrackerTest, LatchSuppressesRepeatEdgesWithinEpisode) {
  SloTracker slo(QualitySlo());
  SloTracker::Burn burn;
  ASSERT_TRUE(slo.RecordQuality(5.0, 1, 100.0, &burn));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(slo.RecordQuality(5.0, 2 + i, 100.0 + i * 0.1, &burn))
        << "second edge inside one episode at sample " << i;
  }
  EXPECT_EQ(slo.burns_total(), 1u);
  EXPECT_EQ(slo.violations(SloTracker::kQualityObjective), 21u);
}

TEST(SloTrackerTest, LatchReleasesAfterBothWindowsRecoverThenReburns) {
  SloTracker slo(QualitySlo());
  SloTracker::Burn burn;
  ASSERT_TRUE(slo.RecordQuality(5.0, 1, 100.0, &burn));
  EXPECT_TRUE(slo.Burning(SloTracker::kQualityObjective));

  // 200s later both windows have rolled past the violation; healthy
  // samples release the latch without producing an edge.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(slo.RecordQuality(1.0, 10 + i, 300.0 + i, &burn));
  }
  EXPECT_FALSE(slo.Burning(SloTracker::kQualityObjective));
  EXPECT_EQ(slo.burns_total(), 1u);

  // A fresh violation starts a NEW episode: second edge.
  ASSERT_TRUE(slo.RecordQuality(9.0, 42, 400.0, &burn));
  EXPECT_EQ(burn.request_id, 42u);
  EXPECT_EQ(slo.burns_total(), 2u);
}

TEST(SloTrackerTest, FastWindowAloneDoesNotBurn) {
  SloTracker slo(QualitySlo());
  SloTracker::Burn burn;
  // 100 healthy samples early in the slow window dilute it below its
  // threshold; a single late violation saturates the fast window only.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(slo.RecordQuality(1.0, i, 5.0, &burn));
  }
  EXPECT_FALSE(slo.RecordQuality(50.0, 999, 58.0, &burn))
      << "burned with slow window below threshold";
  // fast: 1/1 / 0.1 = 10 >= 2, slow: 1/101 / 0.1 ~= 0.099 < 1.
  EXPECT_FALSE(slo.Burning(SloTracker::kQualityObjective));
  EXPECT_EQ(slo.burns_total(), 0u);

  // Piling on violations pushes the slow window over too: now it burns.
  bool burned = false;
  for (int i = 0; i < 30 && !burned; ++i) {
    burned = slo.RecordQuality(50.0, 1000 + i, 59.0, &burn);
  }
  EXPECT_TRUE(burned);
  EXPECT_EQ(slo.burns_total(), 1u);
}

TEST(SloTrackerTest, LatencyObjectivesArePerRungAndGated) {
  SloConfig config;
  config.latency_ms[2] = 50;  // Only the SDP rung has an objective.
  config.error_budget = 0.1;
  ASSERT_TRUE(config.enabled());
  SloTracker slo(config);
  SloTracker::Burn burn;

  // Disabled rung: sample is not even counted.
  EXPECT_FALSE(slo.RecordLatency(/*rung=*/0, 10.0, 1, 100.0, &burn));
  EXPECT_EQ(slo.samples(0), 0u);
  // Out-of-range rung: rejected, not UB.
  EXPECT_FALSE(slo.RecordLatency(7, 10.0, 1, 100.0, &burn));

  // Under-threshold sample on the live rung: counted, no violation.
  EXPECT_FALSE(slo.RecordLatency(2, 0.010, 2, 100.0, &burn));
  EXPECT_EQ(slo.samples(2), 1u);
  EXPECT_EQ(slo.violations(2), 0u);

  // Persistent over-threshold latency burns the rung's objective.
  bool burned = false;
  for (int i = 0; i < 10 && !burned; ++i) {
    burned = slo.RecordLatency(2, 0.200, 3 + i, 101.0 + i, &burn);
  }
  ASSERT_TRUE(burned);
  EXPECT_EQ(burn.objective, 2);
  EXPECT_EQ(burn.rung, 2);
  EXPECT_DOUBLE_EQ(burn.threshold, 50.0);
  EXPECT_DOUBLE_EQ(burn.observed, 200.0);
  EXPECT_EQ(std::string(SloTracker::ObjectiveName(2)), "latency_sdp");
}

TEST(SloTrackerTest, StatuszAndPrometheusExposeBurnState) {
  SloTracker slo(QualitySlo());
  SloTracker::Burn burn;
  ASSERT_TRUE(slo.RecordQuality(5.0, 1, 100.0, &burn));

  const std::string statusz = slo.StatuszSection(100.0);
  EXPECT_NE(statusz.find("quality:"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("BURNING"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("burns_total: 1"), std::string::npos) << statusz;

  const std::string prom = slo.PrometheusText("3", 100.0);
  EXPECT_NE(prom.find("sdp_slo_burns_total{replica=\"3\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find(
          "sdp_slo_burning{objective=\"quality\",replica=\"3\"} 1"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("window=\"fast\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service-level: an injected burn writes exactly one correlated dump

class DtraceServiceTest : public ::testing::Test {
 protected:
  DtraceServiceTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  void SetUp() override {
    FlightRecorder::Global().ResetForTesting();
    FlightRecorder::Global().Enable(true);
  }
  void TearDown() override {
    FlightRecorder::Global().Enable(false);
    FlightRecorder::Global().ResetForTesting();
  }

  Query MakeQuery(Topology t, int n, uint64_t seed) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec).front();
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(DtraceServiceTest, InjectedSloBurnWritesExactlyOneCorrelatedDump) {
  const std::string dump_dir = ::testing::TempDir() + "dtrace_slo_dumps";
  std::filesystem::remove_all(dump_dir);
  std::filesystem::create_directories(dump_dir);

  // Corrupt one plan cost with NaN mid-enumeration; the ladder recovers,
  // and the quality objective (every sample violates at ratio 0.5, since
  // a Q-error is never below 1) burns on the first analyzed plan.
  FaultInjectionScope faults(/*seed=*/3, "cost.nan@2");
  ASSERT_TRUE(faults.ok()) << faults.error();

  ServiceConfig config;
  config.num_threads = 1;
  config.flight_dump_dir = dump_dir;
  config.slo.quality_ratio = 0.5;
  config.analyze_sample_every = 1;
  config.analyze_row_limit = 200;
  OptimizerService service(catalog_, stats_, config);
  ASSERT_NE(service.slo(), nullptr);

  ServiceRequest request;
  request.query = MakeQuery(Topology::kStar, 8, 2);
  request.fallback_enabled = true;
  const ServiceResult result = service.OptimizeSync(std::move(request));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(FaultInjector::Global().FireCount("cost.nan"), 1u)
      << "fault never fired; the test is not exercising injection";

  const auto slo_dumps = [&dump_dir]() {
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dump_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.find("SLO_") != std::string::npos) names.push_back(name);
    }
    return names;
  };

  std::vector<std::string> dumps = slo_dumps();
  ASSERT_EQ(dumps.size(), 1u) << "expected exactly one SLO dump";
  EXPECT_EQ(dumps[0], "flight-req1-SLO_quality.jsonl");
  EXPECT_EQ(service.metrics().slo_burns.load(), 1u);
  EXPECT_TRUE(service.slo()->Burning(SloTracker::kQualityObjective));

  // The dump is the offending request's slice and shows its own cause.
  std::ifstream in(dump_dir + "/" + dumps[0]);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();
  EXPECT_NE(dump.find("\"event\":\"slo_burn\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"objective\":\"quality\""), std::string::npos);
  EXPECT_NE(dump.find("\"req\":1,"), std::string::npos);
  EXPECT_EQ(dump.find("\"req\":2,"), std::string::npos)
      << "dump leaked another request's events";

  // A second violating request lands inside the latched episode: no
  // second edge, no second dump.
  ServiceRequest again;
  again.query = MakeQuery(Topology::kStar, 7, 5);
  again.fallback_enabled = true;
  const ServiceResult second = service.OptimizeSync(std::move(again));
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_EQ(slo_dumps().size(), 1u) << "latched burn wrote another dump";
  EXPECT_EQ(service.metrics().slo_burns.load(), 1u);
}

}  // namespace
}  // namespace sdp
