// Pluggable plan enumerators: DPccp's csg-cmp stream must visit exactly
// the valid pairs (closed-form counts on chains and cliques), agree with
// the DPsize pair scan plan-for-plan wherever both complete, examine an
// order of magnitude fewer candidates on long chains, and keep the
// serial/parallel bit-identity contract DPsize already guarantees.  GOO
// rides the same RunLevel dispatch as a greedy sibling: valid plans,
// never better than DP's optimum, clamped back to DPsize under drivers
// that need complete levels (IDP, SDP).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "optimizer/dp.h"
#include "optimizer/fallback.h"
#include "optimizer/idp.h"
#include "optimizer/plan_enumerator.h"
#include "plan/plan_node.h"
#include "query/topology.h"
#include "service/plan_fingerprint.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// ccp(chain-n) = (n^3 - n) / 6 (Moerkotte & Neumann, Table 1).
uint64_t ChainCcp(uint64_t n) { return (n * n * n - n) / 6; }

// ccp(clique-n) = (3^n + 1) / 2 - 2^n.
uint64_t CliqueCcp(uint64_t n) {
  uint64_t p3 = 1;
  for (uint64_t i = 0; i < n; ++i) p3 *= 3;
  return (p3 + 1) / 2 - (uint64_t{1} << n);
}

class PlanEnumeratorTest : public ::testing::Test {
 protected:
  PlanEnumeratorTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  Query MakeQuery(Topology t, int n, uint64_t seed = 21) {
    return MakeQueryOn(catalog_, t, n, seed);
  }

  static Query MakeQueryOn(const Catalog& catalog, Topology t, int n,
                           uint64_t seed = 21) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = seed;
    return GenerateWorkload(catalog, spec).front();
  }

  static OptimizerOptions EnumOptions(PlanEnumeratorKind kind,
                                      int threads = 1) {
    OptimizerOptions options;
    options.enumerator = kind;
    options.opt_threads = threads;
    // Force the parallel path onto test-sized levels.
    options.parallel_min_pairs = 1;
    return options;
  }

  // Caller-visible plan outcome only.  Enumerators legitimately differ in
  // pairs_examined (that asymmetry is the point), so cross-enumerator
  // comparisons exclude the effort counters; serial-vs-parallel
  // comparisons within one enumerator use the full ResultFingerprint.
  static std::string PlanOnly(const OptimizeResult& result) {
    std::ostringstream out;
    out << std::hexfloat;
    out << "feasible=" << result.feasible << " cost=" << result.cost
        << " rows=" << result.rows << "\n";
    if (result.plan != nullptr) out << result.plan->ToString();
    return out.str();
  }

  // Outcome minus the plan tree, for comparisons where equal-cost plans
  // may legitimately differ: runs of rows=1 index lookups commute at
  // bit-identical total cost, and under strict-< pruning the first pair
  // visited wins, so the tie-break reflects enumeration order.
  static std::string CostOnly(const OptimizeResult& result) {
    std::ostringstream out;
    out << std::hexfloat;
    out << "feasible=" << result.feasible << " cost=" << result.cost
        << " rows=" << result.rows;
    return out.str();
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(PlanEnumeratorTest, ParseAndNameRoundTrip) {
  PlanEnumeratorKind kind;
  ASSERT_TRUE(ParseEnumeratorKind("dpsize", &kind));
  EXPECT_EQ(kind, PlanEnumeratorKind::kDPsize);
  ASSERT_TRUE(ParseEnumeratorKind("dpccp", &kind));
  EXPECT_EQ(kind, PlanEnumeratorKind::kDPccp);
  ASSERT_TRUE(ParseEnumeratorKind("goo", &kind));
  EXPECT_EQ(kind, PlanEnumeratorKind::kGOO);
  EXPECT_FALSE(ParseEnumeratorKind("dpsub", &kind));
  EXPECT_STREQ(EnumeratorName(PlanEnumeratorKind::kDPsize), "dpsize");
  EXPECT_STREQ(EnumeratorName(PlanEnumeratorKind::kDPccp), "dpccp");
  EXPECT_STREQ(EnumeratorName(PlanEnumeratorKind::kGOO), "goo");
}

TEST_F(PlanEnumeratorTest, ChainCandidateCountsMatchClosedForm) {
  for (int n : {3, 5, 10, 20}) {
    const Query q = MakeQuery(Topology::kChain, n);
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult res =
        OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPccp));
    ASSERT_TRUE(res.feasible) << "chain-" << n;
    EXPECT_EQ(res.counters.pairs_examined, ChainCcp(n)) << "chain-" << n;
  }
}

TEST_F(PlanEnumeratorTest, CliqueCandidateCountsMatchClosedForm) {
  for (int n : {3, 4, 6, 8}) {
    const Query q = MakeQuery(Topology::kClique, n);
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult res =
        OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPccp));
    ASSERT_TRUE(res.feasible) << "clique-" << n;
    EXPECT_EQ(res.counters.pairs_examined, CliqueCcp(n)) << "clique-" << n;
  }
}

TEST_F(PlanEnumeratorTest, RelSetInterningCountsHits) {
  const Query q = MakeQuery(Topology::kChain, 12);
  CostModel cost(catalog_, stats_, q.graph);
  const OptimizeResult res =
      OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPccp));
  ASSERT_TRUE(res.feasible);
  // Every csg-cmp pair resolves both sides through the intern table, and
  // subgraphs recur across pairs, so hits dominate.
  EXPECT_GT(res.counters.relset_intern_hits, res.counters.pairs_examined);
  // DPsize never touches the table.
  const OptimizeResult dpsize =
      OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPsize));
  EXPECT_EQ(dpsize.counters.relset_intern_hits, 0u);
}

TEST_F(PlanEnumeratorTest, DpccpMatchesDpsizePlans) {
  struct Case {
    Topology topology;
    int n;
    // Star and clique optima end in commuting runs of rows=1 index
    // lookups -- exact-cost ties whose winner depends on visit order --
    // so only the optimum's cost is comparable across enumerators there.
    bool plans_tie;
  };
  const Case cases[] = {{Topology::kChain, 16, false},
                        {Topology::kCycle, 14, false},
                        {Topology::kStar, 12, true},
                        {Topology::kClique, 8, true}};
  for (const Case& c : cases) {
    const Query q = MakeQuery(c.topology, c.n);
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dpsize =
        OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPsize));
    const OptimizeResult dpccp =
        OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPccp));
    ASSERT_TRUE(dpsize.feasible) << TopologyName(c.topology);
    if (c.plans_tie) {
      EXPECT_EQ(CostOnly(dpccp), CostOnly(dpsize)) << TopologyName(c.topology);
    } else {
      EXPECT_EQ(PlanOnly(dpccp), PlanOnly(dpsize)) << TopologyName(c.topology);
    }
    // Both enumerators reach the same valid pairs, so they cost exactly
    // the same candidates and create the same JCRs -- only the examined
    // pair count differs.
    EXPECT_EQ(dpccp.counters.plans_costed, dpsize.counters.plans_costed)
        << TopologyName(c.topology);
    EXPECT_EQ(dpccp.counters.jcrs_created, dpsize.counters.jcrs_created)
        << TopologyName(c.topology);
    EXPECT_LT(dpccp.counters.pairs_examined, dpsize.counters.pairs_examined)
        << TopologyName(c.topology);
  }
}

TEST_F(PlanEnumeratorTest, DpccpMatchesDpsizeUnderIdpAndSdp) {
  const Query q = MakeQuery(Topology::kStarChain, 15);
  CostModel cost(catalog_, stats_, q.graph);
  {
    const OptimizeResult a = OptimizeIDP(
        q, cost, IdpConfig{}, EnumOptions(PlanEnumeratorKind::kDPsize));
    const OptimizeResult b = OptimizeIDP(
        q, cost, IdpConfig{}, EnumOptions(PlanEnumeratorKind::kDPccp));
    ASSERT_TRUE(a.feasible);
    EXPECT_EQ(PlanOnly(b), PlanOnly(a)) << "idp";
  }
  {
    const OptimizeResult a = OptimizeSDP(
        q, cost, SdpConfig{}, EnumOptions(PlanEnumeratorKind::kDPsize));
    const OptimizeResult b = OptimizeSDP(
        q, cost, SdpConfig{}, EnumOptions(PlanEnumeratorKind::kDPccp));
    ASSERT_TRUE(a.feasible);
    // SDP's plan under this seed ends in a commuting rows=1 lookup run;
    // the tie resolves by visit order, so compare the outcome cost.
    EXPECT_EQ(CostOnly(b), CostOnly(a)) << "sdp";
  }
}

TEST_F(PlanEnumeratorTest, ChainFiftyExaminesTenTimesFewerPairs) {
  // The 50-relation workloads bind against the extended schema (the
  // paper's 25-relation catalog is too small).
  const Catalog big = MakeSyntheticCatalog(ExtendedSchemaConfig(50));
  const StatsCatalog big_stats = SynthesizeStats(big);
  const Query q = MakeQueryOn(big, Topology::kChain, 50);
  CostModel cost(big, big_stats, q.graph);
  const OptimizeResult dpsize =
      OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPsize));
  const OptimizeResult dpccp =
      OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPccp));
  ASSERT_TRUE(dpsize.feasible);
  ASSERT_TRUE(dpccp.feasible);
  EXPECT_EQ(dpccp.counters.pairs_examined, ChainCcp(50));
  // The headline asymptotic win: >= 10x fewer candidate pairs examined.
  EXPECT_GE(dpsize.counters.pairs_examined,
            10 * dpccp.counters.pairs_examined);
  EXPECT_EQ(PlanOnly(dpccp), PlanOnly(dpsize));
}

TEST_F(PlanEnumeratorTest, DpccpBitIdenticalAcrossThreadCounts) {
  struct Case {
    Topology topology;
    int n;
  };
  // Stars and cliques have levels wide enough (>= 2 chunks of 256 tasks)
  // to exercise the sharded DPccp runner; chain-20's narrow levels take
  // the serial fallback inside the parallel configuration, which must be
  // just as invisible.
  const Case cases[] = {{Topology::kStar, 12},
                        {Topology::kClique, 9},
                        {Topology::kChain, 20}};
  for (const Case& c : cases) {
    const Query q = MakeQuery(c.topology, c.n);
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult serial =
        OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPccp, 1));
    ASSERT_TRUE(serial.feasible) << TopologyName(c.topology);
    const std::string want = ResultFingerprint(serial);
    for (int threads : {2, 4, 8}) {
      const OptimizeResult parallel = OptimizeDP(
          q, cost, EnumOptions(PlanEnumeratorKind::kDPccp, threads));
      EXPECT_EQ(ResultFingerprint(parallel), want)
          << TopologyName(c.topology) << " threads=" << threads;
    }
  }
}

TEST_F(PlanEnumeratorTest, DpccpBitIdenticalUnderIdpAndSdpAcrossThreads) {
  const Query q = MakeQuery(Topology::kStar, 11);
  CostModel cost(catalog_, stats_, q.graph);
  const OptimizeResult idp_serial = OptimizeIDP(
      q, cost, IdpConfig{}, EnumOptions(PlanEnumeratorKind::kDPccp, 1));
  const OptimizeResult sdp_serial = OptimizeSDP(
      q, cost, SdpConfig{}, EnumOptions(PlanEnumeratorKind::kDPccp, 1));
  ASSERT_TRUE(idp_serial.feasible);
  ASSERT_TRUE(sdp_serial.feasible);
  for (int threads : {2, 4}) {
    const OptimizeResult idp = OptimizeIDP(
        q, cost, IdpConfig{}, EnumOptions(PlanEnumeratorKind::kDPccp,
                                          threads));
    EXPECT_EQ(ResultFingerprint(idp), ResultFingerprint(idp_serial))
        << "idp threads=" << threads;
    const OptimizeResult sdp = OptimizeSDP(
        q, cost, SdpConfig{}, EnumOptions(PlanEnumeratorKind::kDPccp,
                                          threads));
    EXPECT_EQ(ResultFingerprint(sdp), ResultFingerprint(sdp_serial))
        << "sdp threads=" << threads;
  }
}

TEST_F(PlanEnumeratorTest, DpccpBudgetTripBitIdenticalAcrossThreads) {
  // A plans-budget trip mid-enumeration must latch at the same checkpoint
  // ordinal -- same typed status, same counters -- at any thread count.
  const Query q = MakeQuery(Topology::kStar, 12);
  CostModel cost(catalog_, stats_, q.graph);
  OptimizerOptions serial_opt = EnumOptions(PlanEnumeratorKind::kDPccp, 1);
  serial_opt.max_plans_costed = 1500;
  const OptimizeResult serial = OptimizeDP(q, cost, serial_opt);
  EXPECT_FALSE(serial.feasible);  // The cap must actually trip.
  const std::string want = ResultFingerprint(serial);
  for (int threads : {2, 4, 8}) {
    OptimizerOptions opt = EnumOptions(PlanEnumeratorKind::kDPccp, threads);
    opt.max_plans_costed = 1500;
    const OptimizeResult parallel = OptimizeDP(q, cost, opt);
    EXPECT_EQ(ResultFingerprint(parallel), want) << "threads=" << threads;
  }
}

TEST_F(PlanEnumeratorTest, GooProducesValidPlansNoBetterThanDp) {
  struct Case {
    Topology topology;
    int n;
  };
  const Case cases[] = {{Topology::kChain, 12},
                        {Topology::kStar, 10},
                        {Topology::kCycle, 10}};
  for (const Case& c : cases) {
    const Query q = MakeQuery(c.topology, c.n);
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult goo =
        OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kGOO));
    ASSERT_TRUE(goo.feasible) << TopologyName(c.topology);
    EXPECT_TRUE(ValidatePlanTree(goo.plan).empty())
        << TopologyName(c.topology);
    const OptimizeResult dp =
        OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kDPsize));
    ASSERT_TRUE(dp.feasible);
    // Greedy can never beat the exhaustive optimum.
    EXPECT_GE(goo.cost, dp.cost) << TopologyName(c.topology);
    // n-1 greedy merges, each scanning adjacent root pairs only.
    EXPECT_EQ(goo.counters.jcrs_created,
              static_cast<uint64_t>(2 * c.n - 1))
        << TopologyName(c.topology);
  }
}

TEST_F(PlanEnumeratorTest, GooBitIdenticalAcrossThreadCounts) {
  // GOO always runs on the owning thread; opt_threads must still be
  // invisible end to end.
  const Query q = MakeQuery(Topology::kStarChain, 13);
  CostModel cost(catalog_, stats_, q.graph);
  const OptimizeResult serial =
      OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kGOO, 1));
  ASSERT_TRUE(serial.feasible);
  const std::string want = ResultFingerprint(serial);
  for (int threads : {2, 4, 8}) {
    const OptimizeResult parallel =
        OptimizeDP(q, cost, EnumOptions(PlanEnumeratorKind::kGOO, threads));
    EXPECT_EQ(ResultFingerprint(parallel), want) << "threads=" << threads;
  }
}

TEST_F(PlanEnumeratorTest, GooClampsToDpsizeUnderIdpAndSdp) {
  // IDP's balloon phase and SDP's pruning filter need complete levels, so
  // a GOO request degrades to DPsize inside those drivers -- bit-exactly.
  const Query q = MakeQuery(Topology::kStar, 10);
  CostModel cost(catalog_, stats_, q.graph);
  EXPECT_EQ(ResultFingerprint(OptimizeIDP(
                q, cost, IdpConfig{}, EnumOptions(PlanEnumeratorKind::kGOO))),
            ResultFingerprint(OptimizeIDP(
                q, cost, IdpConfig{},
                EnumOptions(PlanEnumeratorKind::kDPsize))));
  EXPECT_EQ(ResultFingerprint(OptimizeSDP(
                q, cost, SdpConfig{}, EnumOptions(PlanEnumeratorKind::kGOO))),
            ResultFingerprint(OptimizeSDP(
                q, cost, SdpConfig{},
                EnumOptions(PlanEnumeratorKind::kDPsize))));
}

TEST_F(PlanEnumeratorTest, GooRungLabelAndParse) {
  OptimizerOptions goo_opt;
  goo_opt.enumerator = PlanEnumeratorKind::kGOO;
  EXPECT_STREQ(FallbackRungLabel(FallbackRung::kGreedy, goo_opt), "goo");
  EXPECT_STREQ(FallbackRungLabel(FallbackRung::kGreedy, OptimizerOptions{}),
               "greedy");
  EXPECT_STREQ(FallbackRungLabel(FallbackRung::kSDP, goo_opt), "sdp");
  FallbackRung rung;
  ASSERT_TRUE(ParseFallbackRung("goo", &rung));
  EXPECT_EQ(rung, FallbackRung::kGreedy);
}

TEST_F(PlanEnumeratorTest, GooRungResolvesThroughFallbackLadder) {
  // Pinning the ladder to the greedy rung with the GOO enumerator runs
  // Greedy Operator Ordering and reports the "goo" rung label.
  const Query q = MakeQuery(Topology::kStar, 10);
  CostModel cost(catalog_, stats_, q.graph);
  FallbackConfig config;
  config.start_rung = FallbackRung::kGreedy;
  config.max_rung = FallbackRung::kGreedy;
  OptimizerOptions options;
  options.enumerator = PlanEnumeratorKind::kGOO;
  const OptimizeResult res = OptimizeWithFallback(q, cost, config, options);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.rung, "goo");
  EXPECT_EQ(res.algorithm, "GOO");
}

}  // namespace
}  // namespace sdp
