#include "engine/executor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/sdp.h"
#include "engine/table_data.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "query/topology.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// Small schema so join results stay laptop-interactive.
SchemaConfig SmallSchema() {
  SchemaConfig config;
  config.num_relations = 10;
  config.min_rows = 20;
  config.max_rows = 2000;
  config.min_domain = 10;
  config.max_domain = 2000;
  config.seed = 5;
  return config;
}

// Canonical form of a result set: columns sorted, rows sorted, so two
// results compare equal iff they contain the same multiset of tuples.
std::vector<std::vector<int64_t>> Canonicalize(const ResultSet& rs) {
  std::vector<int> order(rs.columns.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (rs.columns[a].rel != rs.columns[b].rel) {
      return rs.columns[a].rel < rs.columns[b].rel;
    }
    return rs.columns[a].col < rs.columns[b].col;
  });
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(rs.rows.size());
  for (const auto& r : rs.rows) {
    std::vector<int64_t> t;
    t.reserve(order.size());
    for (int i : order) t.push_back(r[i]);
    rows.push_back(std::move(t));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : catalog_(MakeSyntheticCatalog(SmallSchema())),
        db_(Database::Generate(catalog_, 99)),
        stats_(db_.Analyze()) {}

  Catalog catalog_;
  Database db_;
  StatsCatalog stats_;
};

TEST_F(EngineTest, GenerateRespectsCatalog) {
  for (int t = 0; t < catalog_.num_tables(); ++t) {
    const Table& meta = catalog_.table(t);
    const TableData& data = db_.table(t);
    EXPECT_EQ(static_cast<uint64_t>(data.num_rows()), meta.row_count);
    ASSERT_EQ(data.columns.size(), meta.columns.size());
    for (size_t c = 0; c < meta.columns.size(); ++c) {
      for (int64_t v : data.columns[c]) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, static_cast<int64_t>(meta.columns[c].domain_size));
      }
    }
    EXPECT_EQ(data.index.size(), static_cast<size_t>(data.num_rows()));
    EXPECT_TRUE(std::is_sorted(data.index.begin(), data.index.end()));
  }
}

TEST_F(EngineTest, RowLimitCapsGeneration) {
  const Database capped = Database::Generate(catalog_, 99, /*row_limit=*/50);
  for (int t = 0; t < catalog_.num_tables(); ++t) {
    EXPECT_LE(capped.table(t).num_rows(), 50);
  }
}

TEST_F(EngineTest, IndexLookupFindsAllMatches) {
  const TableData& data = db_.table(0);
  const int idx_col = catalog_.table(0).indexed_column;
  // Pick an existing key.
  const int64_t key = data.columns[idx_col][0];
  const std::vector<int64_t> rows = data.IndexLookup(key);
  // Every returned row matches, and the count equals a linear scan's.
  int64_t expected = 0;
  for (int64_t v : data.columns[idx_col]) {
    if (v == key) ++expected;
  }
  EXPECT_EQ(static_cast<int64_t>(rows.size()), expected);
  for (int64_t r : rows) EXPECT_EQ(data.columns[idx_col][r], key);
  EXPECT_TRUE(data.IndexLookup(-12345).empty());
}

TEST_F(EngineTest, AnalyzeMatchesData) {
  const ColumnStats& s = stats_.Get(3, 0);
  const auto& values = db_.table(3).columns[0];
  const double max_v =
      static_cast<double>(*std::max_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(s.max_value, max_v);
  EXPECT_GE(s.num_distinct, 1);
  EXPECT_LE(s.num_distinct, static_cast<double>(values.size()));
}

TEST_F(EngineTest, AllOptimizersProduceIdenticalResults) {
  // The load-bearing integration test: every optimizer's plan, executed on
  // real data, must return exactly the reference join result.
  for (Topology t : {Topology::kChain, Topology::kStar, Topology::kStarChain,
                     Topology::kCycle}) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = 6;
    spec.num_instances = 2;
    spec.seed = 31;
    for (const Query& q : GenerateWorkload(catalog_, spec)) {
      CostModel cost(catalog_, stats_, q.graph);
      Executor exec(db_, q.graph);
      const auto reference = Canonicalize(exec.ExecuteReference());

      for (const OptimizeResult& r :
           {OptimizeDP(q, cost), OptimizeIDP(q, cost, IdpConfig{4}),
            OptimizeSDP(q, cost)}) {
        ASSERT_TRUE(r.feasible);
        const ResultSet rs = exec.Execute(r.plan);
        EXPECT_EQ(Canonicalize(rs), reference)
            << TopologyName(t) << " via " << r.algorithm << "\n"
            << r.plan->ToString();
      }
    }
  }
}

TEST_F(EngineTest, SortedPlanDeliversSortedOutput) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 6;
  spec.num_instances = 3;
  spec.ordered = true;
  spec.seed = 8;
  for (const Query& q : GenerateWorkload(catalog_, spec)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult r = OptimizeSDP(q, cost);
    ASSERT_TRUE(r.feasible);
    Executor exec(db_, q.graph);
    const ResultSet rs = exec.Execute(r.plan);
    const int offset = rs.OffsetOf(q.order_by->column);
    ASSERT_GE(offset, 0);
    for (size_t i = 1; i < rs.rows.size(); ++i) {
      EXPECT_LE(rs.rows[i - 1][offset], rs.rows[i][offset]);
    }
  }
}

TEST_F(EngineTest, ProjectionDeliversSelectColumns) {
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 3;
  spec.num_instances = 1;
  spec.seed = 3;
  const Query q = GenerateWorkload(catalog_, spec).front();
  CostModel cost(catalog_, stats_, q.graph);
  const OptimizeResult r = OptimizeDP(q, cost);
  ASSERT_TRUE(r.feasible);

  // Select a non-join column of relation 1: it must be carried through and
  // its projected values must match the base table via the join columns.
  ColumnRef non_join{1, -1};
  for (int c = 0; c < 24; ++c) {
    if (q.graph.EquivClass(ColumnRef{1, c}) < 0) {
      non_join.col = c;
      break;
    }
  }
  ASSERT_GE(non_join.col, 0);
  const JoinEdge& e0 = q.graph.edges()[0];
  const ColumnRef join_col = e0.left.rel == 1 ? e0.left : e0.right;

  Executor exec(db_, q.graph, {}, {non_join});
  const ResultSet full = exec.Execute(r.plan);
  EXPECT_GE(full.OffsetOf(non_join), 0);

  const ResultSet projected =
      Executor::Project(full, {non_join, join_col});
  ASSERT_EQ(projected.columns.size(), 2u);
  EXPECT_EQ(projected.num_rows(), full.num_rows());
  // Spot check: every projected (non_join, join) pair exists as a real row
  // of relation 1.
  const TableData& t1 = db_.table(q.graph.table_id(1));
  for (int64_t r_idx = 0; r_idx < std::min<int64_t>(20, projected.num_rows());
       ++r_idx) {
    const int64_t nj = projected.rows[r_idx][0];
    const int64_t jc = projected.rows[r_idx][1];
    bool found = false;
    for (int64_t row = 0; row < t1.num_rows() && !found; ++row) {
      found = t1.columns[non_join.col][row] == nj &&
              t1.columns[join_col.col][row] == jc;
    }
    EXPECT_TRUE(found) << "projected tuple not in base table";
  }
}

TEST_F(EngineTest, EstimatesTrackActualCardinalities) {
  // Sanity link between the cost model and reality: the estimated output
  // cardinality should be within a couple of orders of magnitude of the
  // actual one on uniform data (estimation error compounds per join).
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 4;
  spec.num_instances = 5;
  spec.seed = 12;
  for (const Query& q : GenerateWorkload(catalog_, spec)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult r = OptimizeDP(q, cost);
    ASSERT_TRUE(r.feasible);
    Executor exec(db_, q.graph);
    const double actual =
        static_cast<double>(exec.Execute(r.plan).num_rows());
    const double estimated = r.rows;
    if (actual >= 1) {
      // Independence assumptions compound multiplicatively per join; a
      // three-join chain staying within three orders of magnitude is the
      // realistic bar (PostgreSQL's estimates drift similarly).
      EXPECT_LT(estimated / actual, 1000);
      EXPECT_GT(estimated / actual, 1.0 / 1000);
    }
  }
}

}  // namespace
}  // namespace sdp
