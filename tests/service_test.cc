#include "service/optimizer_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "harness/experiment.h"
#include "plan/plan_node.h"
#include "service/plan_cache.h"
#include "service/plan_fingerprint.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryTaskAndDrainsOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // Destructor must finish the backlog, not drop it.
  }
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::promise<int> p;
  pool.Submit([&p] { p.set_value(41); });
  EXPECT_EQ(p.get_future().get(), 41);
}

// ---------------------------------------------------------------------------
// Fingerprint / cache

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  CostModel MakeCost(const Query& q) const {
    return CostModel(catalog_, stats_, q.graph, CostParams(), q.filters);
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

// A 3-relation star bound to tables (hub, a, b) with explicit edges, and
// the same star with positions of a and b swapped.  The two queries are
// isomorphic: canonicalization must give them the same key and plans must
// be translatable between them.
Query MakeStarInstance(bool swapped) {
  const int hub_table = 24, table_a = 3, table_b = 11;
  std::vector<int> tables = swapped
                                ? std::vector<int>{hub_table, table_b, table_a}
                                : std::vector<int>{hub_table, table_a, table_b};
  JoinGraph g(std::move(tables));
  const int pos_a = swapped ? 2 : 1;
  const int pos_b = swapped ? 1 : 2;
  g.AddEdge(ColumnRef{0, 2}, ColumnRef{pos_a, 5});
  g.AddEdge(ColumnRef{0, 7}, ColumnRef{pos_b, 1});
  Query q{std::move(g), std::nullopt, {}};
  q.filters.push_back(FilterPredicate{ColumnRef{pos_a, 4}, CompareOp::kLt, 900});
  return q;
}

TEST_F(ServiceTest, FingerprintIsInvariantUnderPositionRelabeling) {
  const Query q1 = MakeStarInstance(false);
  const Query q2 = MakeStarInstance(true);
  const CostModel c1 = MakeCost(q1);
  const CostModel c2 = MakeCost(q2);

  const CanonicalQueryForm f1 = CanonicalizeQuery(q1, c1);
  const CanonicalQueryForm f2 = CanonicalizeQuery(q2, c2);
  EXPECT_EQ(f1.key, f2.key);
  EXPECT_EQ(f1.hash, f2.hash);
  EXPECT_NE(f1.perm, f2.perm);  // Different labelings of the same graph.

  // Same instance twice: identical form.
  const CanonicalQueryForm f1b = CanonicalizeQuery(q1, c1);
  EXPECT_EQ(f1.key, f1b.key);
  EXPECT_EQ(f1.perm, f1b.perm);
}

TEST_F(ServiceTest, FingerprintSeparatesDifferentQueries) {
  const Query q1 = MakeStarInstance(false);
  Query q3 = MakeStarInstance(false);
  q3.filters[0].value = 901;  // Different restriction -> different plan space.
  EXPECT_NE(CanonicalizeQuery(q1, MakeCost(q1)).key,
            CanonicalizeQuery(q3, MakeCost(q3)).key);

  Query q4 = MakeStarInstance(false);
  q4.order_by = OrderRequirement{ColumnRef{1, 5}};
  EXPECT_NE(CanonicalizeQuery(q1, MakeCost(q1)).key,
            CanonicalizeQuery(q4, MakeCost(q4)).key);
}

TEST_F(ServiceTest, CacheServesRelabeledCloneAcrossIsomorphicInstances) {
  const Query q1 = MakeStarInstance(false);
  const Query q2 = MakeStarInstance(true);
  const CostModel c1 = MakeCost(q1);
  const CostModel c2 = MakeCost(q2);
  const CanonicalQueryForm f1 = CanonicalizeQuery(q1, c1);
  const CanonicalQueryForm f2 = CanonicalizeQuery(q2, c2);
  ASSERT_EQ(f1.key, f2.key);

  PlanCache cache(PlanCacheConfig{});
  PlanCache::Ticket ticket;
  OptimizeResult out;
  ASSERT_EQ(cache.LookupOrBegin(f1.key, f1, q1, &ticket, &out),
            PlanCache::Outcome::kMiss);
  ASSERT_TRUE(ticket.valid());

  const OptimizeResult computed = OptimizeSDP(q1, c1);
  ASSERT_TRUE(computed.feasible);
  cache.Fill(std::move(ticket), q1, f1, computed);

  // Probe with the *swapped* instance: the cached plan must come back
  // relabeled into q2's position space, structurally valid, in a fresh
  // arena, and with exactly the cost a from-scratch optimization finds.
  PlanCache::Ticket ticket2;
  OptimizeResult served;
  ASSERT_EQ(cache.LookupOrBegin(f2.key, f2, q2, &ticket2, &served),
            PlanCache::Outcome::kHit);
  ASSERT_NE(served.plan, nullptr);
  EXPECT_NE(served.plan, computed.plan);
  EXPECT_NE(served.plan_arena.get(), computed.plan_arena.get());
  EXPECT_EQ(ValidatePlanTree(served.plan), "");
  EXPECT_EQ(served.plan->rels, q2.graph.AllRelations());

  const OptimizeResult fresh = OptimizeSDP(q2, c2);
  ASSERT_TRUE(fresh.feasible);
  EXPECT_EQ(served.cost, fresh.cost);  // Bit-identical, not just close.
  EXPECT_EQ(served.rows, fresh.rows);

  const PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.remap_failures, 0u);
}

TEST_F(ServiceTest, CacheAbandonLetsNextProbeRetake) {
  const Query q1 = MakeStarInstance(false);
  const CanonicalQueryForm f1 = CanonicalizeQuery(q1, MakeCost(q1));
  PlanCache cache(PlanCacheConfig{});

  PlanCache::Ticket ticket;
  OptimizeResult out;
  ASSERT_EQ(cache.LookupOrBegin(f1.key, f1, q1, &ticket, &out),
            PlanCache::Outcome::kMiss);
  cache.Abandon(std::move(ticket));

  PlanCache::Ticket ticket2;
  EXPECT_EQ(cache.LookupOrBegin(f1.key, f1, q1, &ticket2, &out),
            PlanCache::Outcome::kMiss);
  EXPECT_TRUE(ticket2.valid());
  cache.Abandon(std::move(ticket2));
  EXPECT_EQ(cache.Stats().failures, 2u);
}

// ---------------------------------------------------------------------------
// OptimizerService

TEST_F(ServiceTest, SqlRoundTripAndParseErrors) {
  OptimizerService service(catalog_, stats_, ServiceConfig{});
  ServiceResult ok =
      service
          .SubmitSql("SELECT * FROM R1 a, R2 b, R3 c "
                     "WHERE a.c2 = b.c4 AND b.c7 = c.c1")
          .get();
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(ok.result.feasible);
  EXPECT_EQ(ValidatePlanTree(ok.result.plan), "");

  ServiceResult bad = service.SubmitSql("SELECT FROM WHERE").get();
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("parse error"), std::string::npos);
  EXPECT_EQ(service.metrics().parse_errors.load(), 1u);
  EXPECT_EQ(service.metrics().requests_completed.load(), 2u);
}

TEST_F(ServiceTest, WarmHitReturnsCloneWithoutTouchingEnumerator) {
  ServiceConfig config;
  config.num_threads = 1;
  OptimizerService service(catalog_, stats_, config);

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 13;
  spec.num_instances = 1;
  const Query query = GenerateWorkload(catalog_, spec).front();

  ServiceRequest request;
  request.query = query;
  ServiceResult first = service.OptimizeSync(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cache_hit);
  const uint64_t costed_after_miss = service.metrics().plans_costed.load();
  EXPECT_GT(costed_after_miss, 0u);

  ServiceResult second = service.OptimizeSync(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  // The enumerator never ran: the service-wide effort counter is frozen.
  EXPECT_EQ(service.metrics().plans_costed.load(), costed_after_miss);
  // Same plan by value, distinct memory (deep clone, fresh arena).
  EXPECT_EQ(second.result.cost, first.result.cost);
  EXPECT_NE(second.result.plan, first.result.plan);
  EXPECT_NE(second.result.plan_arena.get(), first.result.plan_arena.get());
  EXPECT_EQ(ValidatePlanTree(second.result.plan), "");
  EXPECT_EQ(second.result.plan->Shape(), first.result.plan->Shape());
}

TEST_F(ServiceTest, AdmissionControlRejectsAndSerializes) {
  ServiceConfig config;
  config.num_threads = 4;
  config.global_memory_cap_bytes = 512ull << 20;
  config.cache_enabled = false;
  OptimizerService service(catalog_, stats_, config);

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 10;
  spec.num_instances = 4;
  const std::vector<Query> queries = GenerateWorkload(catalog_, spec);

  // A budget above the global cap can never be admitted.
  ServiceRequest oversized;
  oversized.query = queries[0];
  oversized.options.memory_budget_bytes = 1024ull << 20;
  ServiceResult rejected = service.OptimizeSync(oversized);
  EXPECT_TRUE(rejected.rejected);
  EXPECT_FALSE(rejected.result.feasible);
  EXPECT_EQ(service.metrics().requests_rejected.load(), 1u);

  // Requests that fit are all served; the cap just sequences them.
  std::vector<std::future<ServiceResult>> futures;
  for (const Query& q : queries) {
    ServiceRequest request;
    request.query = q;
    request.options.memory_budget_bytes = 256ull << 20;
    futures.push_back(service.Submit(std::move(request)));
  }
  for (auto& f : futures) {
    const ServiceResult r = f.get();
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.result.feasible);
  }

  // Unlimited-budget requests reserve the whole cap and still complete.
  ServiceRequest unlimited;
  unlimited.query = queries[1];
  ServiceResult r = service.OptimizeSync(unlimited);
  EXPECT_TRUE(r.ok());
}

TEST_F(ServiceTest, QueueOverflowRejectsAtSubmit) {
  ServiceConfig config;
  config.num_threads = 1;
  config.max_queue_depth = 1;
  OptimizerService service(catalog_, stats_, config);

  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 12;
  spec.num_instances = 1;
  const Query query = GenerateWorkload(catalog_, spec).front();

  // Flood a one-thread, one-slot service; at least one request must be
  // turned away at Submit time, and every future still resolves.
  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 16; ++i) {
    ServiceRequest request;
    request.query = query;
    futures.push_back(service.Submit(std::move(request)));
  }
  int rejected = 0;
  for (auto& f : futures) {
    const ServiceResult r = f.get();
    if (r.rejected) ++rejected;
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(service.metrics().requests_completed.load() +
                service.metrics().requests_rejected.load(),
            16u);
}

TEST_F(ServiceTest, BumpStatsEpochInvalidatesCache) {
  ServiceConfig config;
  config.num_threads = 1;
  OptimizerService service(catalog_, stats_, config);

  ServiceRequest request;
  request.query = MakeStarInstance(false);
  EXPECT_FALSE(service.OptimizeSync(request).cache_hit);
  EXPECT_TRUE(service.OptimizeSync(request).cache_hit);

  service.BumpStatsEpoch();
  EXPECT_FALSE(service.OptimizeSync(request).cache_hit);  // Key epoch moved.
  EXPECT_TRUE(service.OptimizeSync(request).cache_hit);
}

// ---------------------------------------------------------------------------
// Determinism stress: the service must be a pure throughput layer.  The
// same seeded 30-instance star-chain-13 workload, optimized serially and
// through an 8-thread service (cache off and on), must produce
// bit-identical chosen-plan costs and effort counters, and bit-identical
// cache statistics run over run.

TEST_F(ServiceTest, EightThreadServiceMatchesSerialBitForBit) {
  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 13;
  spec.num_instances = 30;
  const std::vector<Query> queries = GenerateWorkload(catalog_, spec);

  // Serial baseline (the seeded RNG lives in workload generation; each
  // optimization below is deterministic given its query).
  std::vector<double> base_costs;
  std::vector<uint64_t> base_plans_costed;
  std::vector<uint64_t> base_jcrs;
  for (const Query& q : queries) {
    const OptimizeResult r = OptimizeSDP(q, MakeCost(q));
    ASSERT_TRUE(r.feasible);
    base_costs.push_back(r.cost);
    base_plans_costed.push_back(r.counters.plans_costed);
    base_jcrs.push_back(r.counters.jcrs_created);
  }

  // Cache-off: every request re-optimizes; results must match the serial
  // run exactly, on every repetition.
  for (int run = 0; run < 2; ++run) {
    ServiceConfig config;
    config.num_threads = 8;
    config.cache_enabled = false;
    OptimizerService service(catalog_, stats_, config);
    std::vector<std::future<ServiceResult>> futures;
    for (const Query& q : queries) {
      ServiceRequest request;
      request.query = q;
      futures.push_back(service.Submit(std::move(request)));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const ServiceResult r = futures[i].get();
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.result.cost, base_costs[i]) << "instance " << i;
      EXPECT_EQ(r.result.counters.plans_costed, base_plans_costed[i]);
      EXPECT_EQ(r.result.counters.jcrs_created, base_jcrs[i]);
    }
    EXPECT_EQ(service.metrics().cache_hits.load(), 0u);
  }

  // Cache-on: submit the workload in waves (wave 1 populates, waves 2-3
  // must be pure hits).  Costs stay bit-identical to serial, the effort
  // counter freezes after wave 1, and the cache statistics repeat exactly
  // across independent runs.
  uint64_t first_run_hits = 0, first_run_misses = 0, first_run_costed = 0;
  for (int run = 0; run < 2; ++run) {
    ServiceConfig config;
    config.num_threads = 8;
    config.cache_enabled = true;
    OptimizerService service(catalog_, stats_, config);

    for (int wave = 0; wave < 3; ++wave) {
      std::vector<std::future<ServiceResult>> futures;
      for (const Query& q : queries) {
        ServiceRequest request;
        request.query = q;
        futures.push_back(service.Submit(std::move(request)));
      }
      const uint64_t costed_before_wave =
          wave == 0 ? 0 : service.metrics().plans_costed.load();
      for (size_t i = 0; i < futures.size(); ++i) {
        const ServiceResult r = futures[i].get();
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r.result.cost, base_costs[i])
            << "run " << run << " wave " << wave << " instance " << i;
        EXPECT_EQ(r.result.counters.plans_costed, base_plans_costed[i]);
      }
      if (wave > 0) {
        // Warm waves never touch the enumerator.
        EXPECT_EQ(service.metrics().plans_costed.load(), costed_before_wave);
      }
    }

    const uint64_t hits = service.metrics().cache_hits.load();
    const uint64_t misses = service.metrics().cache_misses.load();
    const uint64_t costed = service.metrics().plans_costed.load();
    // Every request either hit or missed; warm waves are all hits.
    EXPECT_EQ(hits + misses, 3u * queries.size());
    EXPECT_GE(hits, 2u * queries.size());
    if (run == 0) {
      first_run_hits = hits;
      first_run_misses = misses;
      first_run_costed = costed;
    } else {
      EXPECT_EQ(hits, first_run_hits);
      EXPECT_EQ(misses, first_run_misses);
      EXPECT_EQ(costed, first_run_costed);
    }
  }
}

TEST_F(ServiceTest, ExperimentViaServiceMatchesSerialReport) {
  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 10;
  spec.num_instances = 5;
  const std::vector<Query> queries = GenerateWorkload(catalog_, spec);
  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(), AlgorithmSpec::IDP(4), AlgorithmSpec::SDP()};

  const ExperimentReport serial = RunExperiment(
      queries, catalog_, stats_, algos, OptimizerOptions{}, spec.Name());

  ServiceRunConfig service_config;
  service_config.num_threads = 8;
  std::string metrics_dump;
  const ExperimentReport via_service = RunExperimentViaService(
      queries, catalog_, stats_, algos, OptimizerOptions{}, spec.Name(),
      service_config, &metrics_dump);

  EXPECT_EQ(via_service.reference_name, serial.reference_name);
  ASSERT_EQ(via_service.outcomes.size(), serial.outcomes.size());
  for (size_t a = 0; a < serial.outcomes.size(); ++a) {
    const AlgorithmOutcome& s = serial.outcomes[a];
    const AlgorithmOutcome& v = via_service.outcomes[a];
    EXPECT_EQ(v.name, s.name);
    EXPECT_EQ(v.attempted, s.attempted);
    EXPECT_EQ(v.feasible, s.feasible);
    EXPECT_EQ(v.sum_plans_costed, s.sum_plans_costed);
    EXPECT_EQ(v.sum_jcrs, s.sum_jcrs);
    EXPECT_EQ(v.quality.worst, s.quality.worst);
    EXPECT_EQ(v.quality.Rho(), s.quality.Rho());
    EXPECT_EQ(v.quality.Percent(QualityClass::kIdeal),
              s.quality.Percent(QualityClass::kIdeal));
    EXPECT_EQ(v.quality.Percent(QualityClass::kBad),
              s.quality.Percent(QualityClass::kBad));
  }
  EXPECT_NE(metrics_dump.find("service.requests.completed 15"),
            std::string::npos)
      << metrics_dump;
}

// ---------------------------------------------------------------------------
// Coalescing failure paths (regression: a failed fill used to strand the
// waiters with a generic retry stampede; now exactly one waiter retries
// and the rest inherit the owner's typed error).

TEST_F(ServiceTest, CacheFailurePropagatesTypedStatusToCoalescedWaiters) {
  const Query q1 = MakeStarInstance(false);
  const CanonicalQueryForm f1 = CanonicalizeQuery(q1, MakeCost(q1));
  PlanCache cache(PlanCacheConfig{});

  PlanCache::Ticket owner;
  OptimizeResult unused;
  ASSERT_EQ(cache.LookupOrBegin(f1.key, f1, q1, &owner, &unused),
            PlanCache::Outcome::kMiss);

  // A herd of probes coalesces behind the in-flight owner.  When the
  // owner's fill fails, each probe must resolve to exactly one of:
  //  - kMiss: it won the take-over CAS (at most one holds the slot at a
  //    time; here each winner fails too, re-failing the slot typed), or
  //  - kFailed: it lost the race and inherited the owner's typed error.
  // Which probe lands where is scheduler-dependent; that every probe
  // terminates with one of the two -- no hang, no stampede of concurrent
  // computes, no untyped error -- is the regression under test.
  constexpr int kWaiters = 16;
  std::atomic<int> got_miss{0}, got_failed{0};
  std::atomic<int> bad_status{0}, concurrent_owners{0}, max_owners{0};
  auto waiter = [&] {
    PlanCache::Ticket ticket;
    OptimizeResult out;
    const PlanCache::Outcome o =
        cache.LookupOrBegin(f1.key, f1, q1, &ticket, &out);
    if (o == PlanCache::Outcome::kMiss) {
      got_miss.fetch_add(1);
      const int owners = concurrent_owners.fetch_add(1) + 1;
      int seen = max_owners.load();
      while (owners > seen && !max_owners.compare_exchange_weak(seen, owners)) {
      }
      cache.Abandon(std::move(ticket),
                    OptStatus::Make(OptStatusCode::kMemoryExceeded,
                                    "owner ran out"));
      concurrent_owners.fetch_sub(1);
    } else if (o == PlanCache::Outcome::kFailed) {
      got_failed.fetch_add(1);
      if (out.feasible ||
          out.status.code != OptStatusCode::kMemoryExceeded ||
          out.status.message != "owner ran out") {
        bad_status.fetch_add(1);
      }
    } else {
      bad_status.fetch_add(1);  // kHit/kDisabled impossible here.
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; ++i) threads.emplace_back(waiter);
  // Let the herd block on the computing slot, then fail the fill.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cache.Abandon(std::move(owner),
                OptStatus::Make(OptStatusCode::kMemoryExceeded,
                                "owner ran out"));
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(got_miss.load() + got_failed.load(), kWaiters);
  EXPECT_GE(got_miss.load(), 1);      // Someone always retries...
  EXPECT_LE(max_owners.load(), 1);    // ...but never two at once.
  EXPECT_EQ(bad_status.load(), 0);    // Propagated errors carry the status.
  EXPECT_EQ(cache.Stats().fail_propagated,
            static_cast<uint64_t>(got_failed.load()));
}

TEST_F(ServiceTest, FillFaultDoesNotPoisonCacheOrFailRequest) {
  // The first fill throws (fault site service.fill); the request still
  // returns its computed plan, the slot is abandoned with a typed status,
  // and the next identical request recomputes and repopulates the cache.
  FaultInjectionScope scope(9, "service.fill@1");
  ASSERT_TRUE(scope.ok()) << scope.error();

  ServiceConfig config;
  config.num_threads = 1;
  OptimizerService service(catalog_, stats_, config);

  ServiceRequest request;
  request.query = MakeStarInstance(false);
  const ServiceResult first = service.OptimizeSync(request);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.result.feasible);  // Fill failure is not plan failure.
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(service.cache_stats().failures, 1u);

  const ServiceResult second = service.OptimizeSync(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.result.feasible);
  EXPECT_FALSE(second.cache_hit);  // Retook the failed slot and recomputed.
  EXPECT_EQ(second.result.cost, first.result.cost);

  const ServiceResult third = service.OptimizeSync(request);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third.cache_hit);  // The retry's fill stuck.
}

// ---------------------------------------------------------------------------
// Resource governance through the service.

TEST_F(ServiceTest, GovernedDeadlineFailsTypedAndUngovernedUnaffected) {
  ServiceConfig config;
  config.num_threads = 2;
  OptimizerService service(catalog_, stats_, config);

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 12;
  spec.num_instances = 1;
  const Query query = GenerateWorkload(catalog_, spec).front();

  // Impossible deadline, no fallback: typed failure, not an exception.
  ServiceRequest doomed;
  doomed.query = query;
  doomed.budget.deadline_seconds = 1e-6;
  const ServiceResult failed = service.OptimizeSync(doomed);
  ASSERT_TRUE(failed.error.empty()) << failed.error;
  EXPECT_FALSE(failed.result.feasible);
  EXPECT_EQ(failed.result.status.code, OptStatusCode::kDeadlineExceeded);
  EXPECT_GE(service.metrics().status_deadline_exceeded.load(), 1u);

  // The same query ungoverned is untouched by the failure above (the
  // governed attempt must not have poisoned the shared cache key space).
  ServiceRequest plain;
  plain.query = query;
  const ServiceResult ok = service.OptimizeSync(plain);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.result.feasible);
}

TEST_F(ServiceTest, GovernedFallbackDegradesInsteadOfFailing) {
  ServiceConfig config;
  config.num_threads = 1;
  OptimizerService service(catalog_, stats_, config);

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 11;
  spec.num_instances = 1;
  const Query query = GenerateWorkload(catalog_, spec).front();

  ServiceRequest request;
  request.query = query;
  request.spec = AlgorithmSpec::DP();
  request.fallback_enabled = true;
  request.budget.max_plans_costed = 500;  // DP cannot fit in this.
  const ServiceResult r = service.OptimizeSync(request);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_TRUE(r.result.feasible) << r.result.status.ToString();
  EXPECT_NE(r.result.rung, "dp");
  EXPECT_GE(r.result.retries, 1);
  EXPECT_EQ(ValidatePlanTree(r.result.plan), "");
  EXPECT_GE(service.metrics().requests_degraded.load(), 1u);
  EXPECT_GE(service.metrics().degrade_attempts.load(), 2u);
}

TEST_F(ServiceTest, QueueFullRejectionCarriesRetryAfterHint) {
  ServiceConfig config;
  config.num_threads = 1;
  config.max_queue_depth = 1;
  OptimizerService service(catalog_, stats_, config);

  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 12;
  spec.num_instances = 1;
  const Query query = GenerateWorkload(catalog_, spec).front();

  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 16; ++i) {
    ServiceRequest request;
    request.query = query;
    futures.push_back(service.Submit(std::move(request)));
  }
  int rejected = 0;
  for (auto& f : futures) {
    const ServiceResult r = f.get();
    if (!r.rejected) continue;
    ++rejected;
    EXPECT_GT(r.retry_after_ms, 0);
    EXPECT_LT(r.retry_after_ms, 100);
    EXPECT_FALSE(r.result.status.ok());
  }
  ASSERT_GT(rejected, 0);
  EXPECT_GE(service.metrics().shed_with_retry_hint.load(),
            static_cast<uint64_t>(rejected));
}

}  // namespace
}  // namespace sdp
