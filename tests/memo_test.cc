#include "optimizer/memo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/arena.h"

namespace sdp {
namespace {

PlanNode* NewPlan(Arena* arena, double cost, int ordering) {
  PlanNode* p = arena->New<PlanNode>();
  p->kind = PlanKind::kSeqScan;
  p->rel = 0;
  p->rels = RelSet::Single(0);
  p->rows = 10;
  p->cost = cost;
  p->ordering = ordering;
  return p;
}

TEST(MemoEntryTest, CheapestPlan) {
  Arena arena;
  MemoEntry e;
  EXPECT_EQ(e.CheapestPlan(), nullptr);
  EXPECT_TRUE(std::isinf(e.CheapestCost()));
  e.AddPlan(NewPlan(&arena, 100, -1));
  e.AddPlan(NewPlan(&arena, 50, 3));
  EXPECT_DOUBLE_EQ(e.CheapestCost(), 50);
  EXPECT_EQ(e.CheapestPlan()->ordering, 3);
}

TEST(MemoEntryTest, DominanceUnorderedVsOrdered) {
  Arena arena;
  MemoEntry e;
  // Ordered plan at cost 50 serves unordered uses too: a later unordered
  // plan at cost 60 is dominated.
  EXPECT_TRUE(e.AddPlan(NewPlan(&arena, 50, 3)));
  EXPECT_FALSE(e.WouldImprove(-1, 60));
  EXPECT_FALSE(e.AddPlan(NewPlan(&arena, 60, -1)));
  // A cheaper unordered plan is kept, but does not evict the ordered one.
  EXPECT_TRUE(e.AddPlan(NewPlan(&arena, 40, -1)));
  EXPECT_EQ(e.plans.size(), 2u);
  // A still-cheaper plan with the same ordering evicts the old ordered plan
  // AND the unordered one (it serves both groups at lower cost).
  EXPECT_TRUE(e.AddPlan(NewPlan(&arena, 30, 3)));
  ASSERT_EQ(e.plans.size(), 1u);
  EXPECT_DOUBLE_EQ(e.PlanWithOrdering(3)->cost, 30);
  EXPECT_DOUBLE_EQ(e.CheapestCost(), 30);
}

TEST(MemoEntryTest, CheapUnorderedEvictsCostlierOrdered) {
  Arena arena;
  MemoEntry e;
  EXPECT_TRUE(e.AddPlan(NewPlan(&arena, 100, 2)));
  // Unordered at 80: the ordered plan at 100 is NOT dominated (it provides
  // an order the unordered one lacks).
  EXPECT_TRUE(e.AddPlan(NewPlan(&arena, 80, -1)));
  EXPECT_EQ(e.plans.size(), 2u);
  // Unordered at 100 would be dominated by the 80 one.
  EXPECT_FALSE(e.WouldImprove(-1, 100));
  // Ordered-2 at 70 dominates both the old ordered-2 and the unordered-80?
  // It dominates ordered-2 (same ordering) but not unordered... it does:
  // an ordered plan serves the unordered group when it costs less.
  EXPECT_TRUE(e.AddPlan(NewPlan(&arena, 70, 2)));
  ASSERT_EQ(e.plans.size(), 1u);
  EXPECT_DOUBLE_EQ(e.plans[0].plan->cost, 70);
}

TEST(MemoEntryTest, DistinctOrderingsCoexist) {
  Arena arena;
  MemoEntry e;
  EXPECT_TRUE(e.AddPlan(NewPlan(&arena, 50, 1)));
  EXPECT_TRUE(e.AddPlan(NewPlan(&arena, 60, 2)));
  EXPECT_EQ(e.plans.size(), 2u);
  EXPECT_NE(e.PlanWithOrdering(1), nullptr);
  EXPECT_NE(e.PlanWithOrdering(2), nullptr);
  EXPECT_EQ(e.PlanWithOrdering(7), nullptr);
}

TEST(MemoTest, GetOrCreateAndFind) {
  MemoryGauge gauge;
  Memo memo(&gauge);
  const RelSet s = RelSet::Single(1).With(3);
  EXPECT_EQ(memo.Find(s), nullptr);
  bool created = false;
  MemoEntry* e = memo.GetOrCreate(s, 2, 1000, 0.5, &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(e->rels, s);
  EXPECT_EQ(e->unit_count, 2);
  MemoEntry* again = memo.GetOrCreate(s, 2, 1000, 0.5, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(again, e);
  EXPECT_EQ(memo.Find(s), e);
  EXPECT_EQ(memo.num_entries(), 1u);
}

TEST(MemoTest, EntriesByUnitCount) {
  MemoryGauge gauge;
  Memo memo(&gauge);
  bool created;
  memo.GetOrCreate(RelSet::Single(0), 1, 1, 1, &created);
  memo.GetOrCreate(RelSet::Single(1), 1, 1, 1, &created);
  memo.GetOrCreate(RelSet::Single(0).With(1), 2, 1, 1, &created);
  EXPECT_EQ(memo.EntriesWithUnitCount(1).size(), 2u);
  EXPECT_EQ(memo.EntriesWithUnitCount(2).size(), 1u);
  EXPECT_TRUE(memo.EntriesWithUnitCount(3).empty());
  EXPECT_TRUE(memo.EntriesWithUnitCount(-1).empty());
}

TEST(MemoTest, PointerStabilityUnderGrowth) {
  MemoryGauge gauge;
  Memo memo(&gauge);
  bool created;
  MemoEntry* first = memo.GetOrCreate(RelSet::Single(0), 1, 1, 1, &created);
  const auto& size1 = memo.EntriesWithUnitCount(1);
  // Creating many entries at other sizes must not invalidate `first` or the
  // size-1 list reference (regression test for the deque-backed storage).
  for (int i = 0; i < 1000; ++i) {
    memo.GetOrCreate(RelSet(static_cast<uint64_t>(i) + 7), (i % 60) + 2, 1, 1,
                     &created);
  }
  EXPECT_EQ(size1.size(), 1u);
  EXPECT_EQ(size1[0], first);
  EXPECT_EQ(first->rels, RelSet::Single(0));
}

TEST(MemoTest, MemoryChargedAndReleased) {
  MemoryGauge gauge;
  {
    Memo memo(&gauge);
    bool created;
    for (int i = 0; i < 100; ++i) {
      memo.GetOrCreate(RelSet(static_cast<uint64_t>(i) + 1), 1, 1, 1,
                       &created);
    }
    EXPECT_GT(gauge.current_bytes(), 100 * sizeof(MemoEntry));
  }
  EXPECT_EQ(gauge.current_bytes(), 0u);
}

}  // namespace
}  // namespace sdp
