#include "stats/column_stats.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace sdp {
namespace {

TEST(HistogramTest, FractionBelow) {
  Histogram h;
  h.bounds = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(h.FractionBelow(-5), 0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(0), 0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(40), 1);
  EXPECT_DOUBLE_EQ(h.FractionBelow(100), 1);
  EXPECT_DOUBLE_EQ(h.FractionBelow(20), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionBelow(5), 0.125);
}

TEST(HistogramTest, EmptyIsAgnostic) {
  Histogram h;
  EXPECT_TRUE(h.Empty());
  EXPECT_DOUBLE_EQ(h.FractionBelow(123), 0.5);
}

TEST(ExpectedDistinctTest, UniformLimits) {
  // Tiny sample from huge domain: nearly all distinct.
  EXPECT_NEAR(ExpectedDistinctUniform(100, 1e9), 100, 1);
  // Huge sample from small domain: domain saturates.
  EXPECT_NEAR(ExpectedDistinctUniform(1e7, 100), 100, 0.01);
  // Zero rows.
  EXPECT_DOUBLE_EQ(ExpectedDistinctUniform(0, 50), 0);
  // R draws from domain R: about (1 - 1/e) * R occupied.
  EXPECT_NEAR(ExpectedDistinctUniform(10000, 10000), 10000 * 0.632, 10000 * 0.01);
}

TEST(SynthesizeStatsTest, CoversAllColumns) {
  const Catalog c = MakeSyntheticCatalog(SchemaConfig{});
  const StatsCatalog stats = SynthesizeStats(c);
  for (int t = 0; t < c.num_tables(); ++t) {
    for (size_t col = 0; col < c.table(t).columns.size(); ++col) {
      const ColumnStats& s = stats.Get(t, static_cast<int>(col));
      EXPECT_GE(s.num_distinct, 1);
      EXPECT_LE(s.num_distinct,
                static_cast<double>(c.table(t).row_count) + 1);
      EXPECT_LE(s.num_distinct,
                static_cast<double>(c.table(t).columns[col].domain_size) + 1);
      EXPECT_FALSE(s.histogram.Empty());
    }
  }
}

TEST(SynthesizeStatsTest, SkewReducesDistincts) {
  SchemaConfig uniform_cfg;
  SchemaConfig skewed_cfg;
  skewed_cfg.distribution = DataDistribution::kExponential;
  const Catalog cu = MakeSyntheticCatalog(uniform_cfg);
  const Catalog cs = MakeSyntheticCatalog(skewed_cfg);
  const StatsCatalog su = SynthesizeStats(cu);
  const StatsCatalog ss = SynthesizeStats(cs);
  // Same layout (same seed), so compare column by column: exponential data
  // concentrates mass and should never have more distinct values.
  int strictly_less = 0;
  for (int t = 0; t < cu.num_tables(); ++t) {
    for (int col = 0; col < 24; ++col) {
      EXPECT_LE(ss.Get(t, col).num_distinct,
                su.Get(t, col).num_distinct * 1.05);
      if (ss.Get(t, col).num_distinct < su.Get(t, col).num_distinct * 0.9) {
        ++strictly_less;
      }
    }
  }
  EXPECT_GT(strictly_less, 0);
}

TEST(ComputeColumnStatsTest, ExactOnSmallData) {
  const std::vector<int64_t> values = {5, 3, 7, 3, 9, 5, 1};
  const ColumnStats s = ComputeColumnStats(values, 4);
  EXPECT_DOUBLE_EQ(s.num_distinct, 5);
  EXPECT_DOUBLE_EQ(s.min_value, 1);
  EXPECT_DOUBLE_EQ(s.max_value, 9);
  EXPECT_EQ(s.histogram.num_buckets(), 4);
  EXPECT_DOUBLE_EQ(s.histogram.bounds.front(), 1);
  EXPECT_DOUBLE_EQ(s.histogram.bounds.back(), 9);
}

TEST(ComputeColumnStatsTest, EmptyInput) {
  const ColumnStats s = ComputeColumnStats({}, 4);
  EXPECT_DOUBLE_EQ(s.num_distinct, 0);
  EXPECT_TRUE(s.histogram.Empty());
}

TEST(ComputeColumnStatsTest, HistogramBoundsMonotone) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back((i * 37) % 101);
  const ColumnStats s = ComputeColumnStats(values, 16);
  for (size_t i = 1; i < s.histogram.bounds.size(); ++i) {
    EXPECT_LE(s.histogram.bounds[i - 1], s.histogram.bounds[i]);
  }
}

}  // namespace
}  // namespace sdp
