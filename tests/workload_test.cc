#include "workload/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "metrics/quality.h"

namespace sdp {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : catalog_(MakeSyntheticCatalog(SchemaConfig{})) {}
  Catalog catalog_;
};

TEST_F(WorkloadTest, GeneratesRequestedInstances) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 10;
  spec.num_instances = 17;
  const std::vector<Query> queries = GenerateWorkload(catalog_, spec);
  ASSERT_EQ(queries.size(), 17u);
  for (const Query& q : queries) {
    EXPECT_EQ(q.graph.num_relations(), 10);
    EXPECT_TRUE(q.graph.IsConnected(q.graph.AllRelations()));
    EXPECT_FALSE(q.order_by.has_value());
  }
}

TEST_F(WorkloadTest, StarHubIsLargestRelation) {
  const int largest = catalog_.TablesByRowCountDesc().front();
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 8;
  spec.num_instances = 10;
  for (const Query& q : GenerateWorkload(catalog_, spec)) {
    EXPECT_EQ(q.graph.table_id(0), largest);
  }
}

TEST_F(WorkloadTest, InstancesUseDistinctTables) {
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 12;
  spec.num_instances = 5;
  for (const Query& q : GenerateWorkload(catalog_, spec)) {
    std::set<int> uniq(q.graph.table_ids().begin(),
                       q.graph.table_ids().end());
    EXPECT_EQ(uniq.size(), 12u);
  }
}

TEST_F(WorkloadTest, InstancesVary) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 10;
  spec.num_instances = 10;
  const std::vector<Query> queries = GenerateWorkload(catalog_, spec);
  std::set<std::vector<int>> layouts;
  for (const Query& q : queries) layouts.insert(q.graph.table_ids());
  EXPECT_GT(layouts.size(), 5u);
}

TEST_F(WorkloadTest, Deterministic) {
  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 15;
  spec.num_instances = 4;
  spec.ordered = true;
  const std::vector<Query> a = GenerateWorkload(catalog_, spec);
  const std::vector<Query> b = GenerateWorkload(catalog_, spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].graph.table_ids(), b[i].graph.table_ids());
    EXPECT_EQ(a[i].order_by->column, b[i].order_by->column);
  }
}

TEST_F(WorkloadTest, OrderedVariantPicksJoinColumn) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 10;
  spec.num_instances = 10;
  spec.ordered = true;
  for (const Query& q : GenerateWorkload(catalog_, spec)) {
    ASSERT_TRUE(q.order_by.has_value());
    EXPECT_GE(q.graph.EquivClass(q.order_by->column), 0);
  }
}

TEST_F(WorkloadTest, NameEncodesSpec) {
  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 15;
  EXPECT_EQ(spec.Name(), "Star-Chain-15");
  spec.ordered = true;
  EXPECT_EQ(spec.Name(), "Star-Chain-15 (ordered)");
}

TEST(QualityMetricsTest, Classification) {
  EXPECT_EQ(ClassifyRatio(1.0), QualityClass::kIdeal);
  EXPECT_EQ(ClassifyRatio(1.009), QualityClass::kIdeal);
  EXPECT_EQ(ClassifyRatio(1.5), QualityClass::kGood);
  EXPECT_EQ(ClassifyRatio(2.0), QualityClass::kGood);
  EXPECT_EQ(ClassifyRatio(9.99), QualityClass::kAcceptable);
  EXPECT_EQ(ClassifyRatio(10.01), QualityClass::kBad);
}

TEST(QualityMetricsTest, DistributionAggregates) {
  QualityDistribution d;
  d.Add(1.0);
  d.Add(1.5);
  d.Add(4.0);
  d.Add(16.0);
  EXPECT_EQ(d.total, 4);
  EXPECT_DOUBLE_EQ(d.Percent(QualityClass::kIdeal), 25);
  EXPECT_DOUBLE_EQ(d.Percent(QualityClass::kGood), 25);
  EXPECT_DOUBLE_EQ(d.Percent(QualityClass::kAcceptable), 25);
  EXPECT_DOUBLE_EQ(d.Percent(QualityClass::kBad), 25);
  EXPECT_DOUBLE_EQ(d.worst, 16.0);
  EXPECT_NEAR(d.Rho(), std::pow(1.0 * 1.5 * 4.0 * 16.0, 0.25), 1e-12);
}

TEST(QualityMetricsTest, EmptyDistribution) {
  QualityDistribution d;
  EXPECT_DOUBLE_EQ(d.Percent(QualityClass::kIdeal), 0);
  EXPECT_DOUBLE_EQ(d.Rho(), 0);
}

}  // namespace
}  // namespace sdp
