// Parameterized property sweeps: the invariants every optimizer must hold
// across the full (topology x size x algorithm x ordered) grid.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "harness/experiment.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "query/topology.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

struct SweepCase {
  Topology topology;
  int num_relations;
  bool ordered;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = TopologyName(info.param.topology);
  name += std::to_string(info.param.num_relations);
  if (info.param.ordered) name += "Ordered";
  // gtest demands alphanumerics only.
  std::string clean;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) clean += c;
  }
  return clean;
}

class OptimizerSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeSyntheticCatalog(SchemaConfig{}));
    stats_ = new StatsCatalog(SynthesizeStats(*catalog_));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete stats_;
    catalog_ = nullptr;
    stats_ = nullptr;
  }

  std::vector<Query> Queries(int instances) const {
    WorkloadSpec spec;
    spec.topology = GetParam().topology;
    spec.num_relations = GetParam().num_relations;
    spec.num_instances = instances;
    spec.ordered = GetParam().ordered;
    spec.seed = 71;
    return GenerateWorkload(*catalog_, spec);
  }

  static Catalog* catalog_;
  static StatsCatalog* stats_;
};

Catalog* OptimizerSweep::catalog_ = nullptr;
StatsCatalog* OptimizerSweep::stats_ = nullptr;

// Every algorithm yields a structurally valid plan covering all relations,
// whose cost is no better than DP's and whose ordering satisfies the query.
TEST_P(OptimizerSweep, AllAlgorithmsValidAndBoundedByDP) {
  for (const Query& q : Queries(2)) {
    CostModel cost(*catalog_, *stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    ASSERT_TRUE(dp.feasible);
    for (const OptimizeResult& r :
         {OptimizeIDP(q, cost, IdpConfig{4}), OptimizeIDP(q, cost, IdpConfig{7}),
          OptimizeSDP(q, cost)}) {
      ASSERT_TRUE(r.feasible) << r.algorithm;
      EXPECT_EQ(ValidatePlanTree(r.plan), "") << r.algorithm;
      EXPECT_EQ(r.plan->rels, q.graph.AllRelations()) << r.algorithm;
      EXPECT_GE(r.cost, dp.cost - dp.cost * 1e-9) << r.algorithm;
      if (q.order_by.has_value()) {
        EXPECT_EQ(r.plan->ordering, q.graph.EquivClass(q.order_by->column))
            << r.algorithm;
      }
      // Overheads are consistently reported.
      EXPECT_GT(r.counters.plans_costed, 0u);
      EXPECT_GT(r.peak_memory_mb, 0);
    }
  }
}

// SDP's search effort never exceeds DP's.
TEST_P(OptimizerSweep, SDPEffortBoundedByDP) {
  for (const Query& q : Queries(2)) {
    CostModel cost(*catalog_, *stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult sdp = OptimizeSDP(q, cost);
    ASSERT_TRUE(dp.feasible && sdp.feasible);
    EXPECT_LE(sdp.counters.plans_costed, dp.counters.plans_costed);
    EXPECT_LE(sdp.counters.jcrs_created, dp.counters.jcrs_created);
  }
}

// The paper's robustness claim, as a hard property: SDP within 2x of DP.
TEST_P(OptimizerSweep, SDPAlwaysAtLeastGood) {
  for (const Query& q : Queries(3)) {
    CostModel cost(*catalog_, *stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult sdp = OptimizeSDP(q, cost);
    ASSERT_TRUE(dp.feasible && sdp.feasible);
    EXPECT_LE(sdp.cost / dp.cost, 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, OptimizerSweep,
    ::testing::Values(SweepCase{Topology::kChain, 8, false},
                      SweepCase{Topology::kChain, 12, false},
                      SweepCase{Topology::kStar, 8, false},
                      SweepCase{Topology::kStar, 11, false},
                      SweepCase{Topology::kStar, 11, true},
                      SweepCase{Topology::kStarChain, 11, false},
                      SweepCase{Topology::kStarChain, 13, true},
                      SweepCase{Topology::kCycle, 9, false},
                      SweepCase{Topology::kClique, 7, false},
                      SweepCase{Topology::kClique, 7, true}),
    CaseName);

// --- SDP configuration sweep -------------------------------------------

struct ConfigCase {
  const char* name;
  SdpConfig config;
};

class SdpConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

// Every SDP configuration stays within the paper's "at least Good" band on
// the headline workload.
TEST_P(SdpConfigSweep, RobustOnStarChain) {
  const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
  const StatsCatalog stats = SynthesizeStats(catalog);
  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 12;
  spec.num_instances = 3;
  spec.seed = 19;
  for (const Query& q : GenerateWorkload(catalog, spec)) {
    CostModel cost(catalog, stats, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult r = OptimizeSDP(q, cost, GetParam().config);
    ASSERT_TRUE(dp.feasible && r.feasible);
    EXPECT_EQ(ValidatePlanTree(r.plan), "");
    EXPECT_LE(r.cost / dp.cost, 2.5) << GetParam().name;
  }
}

SdpConfig WithPartitioning(SdpConfig::Partitioning p) {
  SdpConfig c;
  c.partitioning = p;
  return c;
}
SdpConfig WithSkyline(SkylineVariant v) {
  SdpConfig c;
  c.skyline = v;
  return c;
}
SdpConfig WithHubDegree(int d) {
  SdpConfig c;
  c.hub_degree = d;
  return c;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SdpConfigSweep,
    ::testing::Values(
        ConfigCase{"default", SdpConfig{}},
        ConfigCase{"parent_hub",
                   WithPartitioning(SdpConfig::Partitioning::kParentHub)},
        ConfigCase{"option1", WithSkyline(SkylineVariant::kFullVector)},
        ConfigCase{"hub_degree4", WithHubDegree(4)}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace sdp
