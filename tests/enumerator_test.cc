// Direct tests of the enumerator internals: ordering space, leaf
// installation, join emission, finalization, and failure injection (budget
// aborts at many thresholds must leave consistent state).
#include "optimizer/enumerator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "optimizer/dp.h"
#include "optimizer/memo.h"
#include "optimizer/plan_pool.h"
#include "query/topology.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

class EnumeratorTest : public ::testing::Test {
 protected:
  EnumeratorTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  Query StarQuery(int n) {
    WorkloadSpec spec;
    spec.topology = Topology::kStar;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = 44;
    return GenerateWorkload(catalog_, spec).front();
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(EnumeratorTest, OrderingSpaceMapsJoinColumns) {
  const Query q = StarQuery(5);
  OrderingSpace space(q.graph, std::nullopt);
  // Every edge endpoint maps to its equivalence class.
  for (const JoinEdge& e : q.graph.edges()) {
    EXPECT_EQ(space.IdFor(e.left), q.graph.EquivClass(e.left));
    EXPECT_EQ(space.IdFor(e.left), space.IdFor(e.right));
    EXPECT_GE(space.IdFor(e.left), 0);
  }
  // Non-join columns are uninteresting.
  EXPECT_EQ(space.IdFor(ColumnRef{0, 23}), -1);
  EXPECT_EQ(space.RequiredId(), -1);
}

TEST_F(EnumeratorTest, OrderingSpaceExtraIdForNonJoinOrderBy) {
  const Query q = StarQuery(5);
  // Find a column that participates in no join.
  ColumnRef non_join{2, -1};
  for (int c = 0; c < 24; ++c) {
    if (q.graph.EquivClass(ColumnRef{2, c}) < 0) {
      non_join.col = c;
      break;
    }
  }
  ASSERT_GE(non_join.col, 0);
  OrderingSpace space(q.graph, non_join);
  EXPECT_EQ(space.IdFor(non_join), q.graph.num_equiv_classes());
  EXPECT_EQ(space.RequiredId(), q.graph.num_equiv_classes());
}

TEST_F(EnumeratorTest, LeafInstallationProducesScans) {
  const Query q = StarQuery(5);
  CostModel cost(catalog_, stats_, q.graph);
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  Memo memo(&gauge);
  CardinalityEstimator card(q.graph, cost, &gauge);
  OrderingSpace space(q.graph, std::nullopt);
  SearchCounters counters;
  JoinEnumerator enumerator(q.graph, cost, space, &card, &memo, &pool, &gauge,
                            OptimizerOptions{}, &counters);
  enumerator.InstallBaseRelationLeaves();
  EXPECT_EQ(memo.num_entries(), 5u);
  for (int r = 0; r < 5; ++r) {
    MemoEntry* e = memo.Find(RelSet::Single(r));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->unit_count, 1);
    EXPECT_DOUBLE_EQ(e->rows, cost.BaseRows(r));
    ASSERT_FALSE(e->plans.empty());
    const PlanNode* cheapest = e->CheapestPlan();
    EXPECT_EQ(cheapest->kind, PlanKind::kSeqScan);
    // Spokes join on their indexed column: an ordered index-scan plan is
    // retained alongside when its order is a join class.
    const int idx = cost.IndexedColumn(r);
    if (space.IdFor(ColumnRef{r, idx}) >= 0) {
      EXPECT_NE(e->PlanWithOrdering(space.IdFor(ColumnRef{r, idx})), nullptr);
    }
  }
}

TEST_F(EnumeratorTest, RunLevelBuildsExactlyConnectedPairs) {
  const Query q = StarQuery(5);  // Hub 0 + 4 spokes.
  CostModel cost(catalog_, stats_, q.graph);
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  Memo memo(&gauge);
  CardinalityEstimator card(q.graph, cost, &gauge);
  OrderingSpace space(q.graph, std::nullopt);
  SearchCounters counters;
  JoinEnumerator enumerator(q.graph, cost, space, &card, &memo, &pool, &gauge,
                            OptimizerOptions{}, &counters);
  enumerator.InstallBaseRelationLeaves();
  ASSERT_TRUE(enumerator.RunLevel(2));
  // Level 2 of a star: exactly the 4 hub-spoke pairs (no spoke-spoke).
  EXPECT_EQ(memo.EntriesWithUnitCount(2).size(), 4u);
  for (MemoEntry* e : memo.EntriesWithUnitCount(2)) {
    EXPECT_TRUE(e->rels.Contains(0));
  }
  ASSERT_TRUE(enumerator.RunLevel(3));
  // Level 3: hub + any 2 of 4 spokes = C(4,2) = 6.
  EXPECT_EQ(memo.EntriesWithUnitCount(3).size(), 6u);
}

TEST_F(EnumeratorTest, EmitJoinsIntoScratchEntry) {
  const Query q = StarQuery(4);
  CostModel cost(catalog_, stats_, q.graph);
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  Memo memo(&gauge);
  CardinalityEstimator card(q.graph, cost, &gauge);
  OrderingSpace space(q.graph, std::nullopt);
  SearchCounters counters;
  JoinEnumerator enumerator(q.graph, cost, space, &card, &memo, &pool, &gauge,
                            OptimizerOptions{}, &counters);
  enumerator.InstallBaseRelationLeaves();

  MemoEntry scratch;
  scratch.rels = RelSet::Single(0).With(1);
  scratch.unit_count = 2;
  scratch.rows = card.Rows(scratch.rels);
  scratch.sel = card.Selectivity(scratch.rels);
  enumerator.EmitJoinsInto(&scratch, memo.Find(RelSet::Single(0)),
                           memo.Find(RelSet::Single(1)));
  ASSERT_FALSE(scratch.plans.empty());
  const PlanNode* best = scratch.CheapestPlan();
  EXPECT_TRUE(best->IsJoin());
  EXPECT_EQ(best->rels, scratch.rels);
  EXPECT_EQ(ValidatePlanTree(best), "");
  // Scratch entries never land in the memo.
  EXPECT_EQ(memo.Find(scratch.rels), nullptr);
}

TEST_F(EnumeratorTest, BudgetAbortSweepLeavesConsistentResults) {
  // Failure injection: abort the optimization at many different budget
  // thresholds.  Every run must either fail cleanly (no plan, infinite
  // cost) or succeed with exactly the unconstrained optimum -- never a
  // silently degraded plan.
  const Query q = StarQuery(9);
  CostModel cost(catalog_, stats_, q.graph);
  const OptimizeResult reference = OptimizeDP(q, cost);
  ASSERT_TRUE(reference.feasible);
  int failures = 0, successes = 0;
  for (size_t budget = 8 * 1024; budget <= 4096 * 1024; budget *= 2) {
    OptimizerOptions opts;
    opts.memory_budget_bytes = budget;
    const OptimizeResult r = OptimizeDP(q, cost, opts);
    if (r.feasible) {
      ++successes;
      EXPECT_NEAR(r.cost, reference.cost, reference.cost * 1e-12);
      EXPECT_EQ(ValidatePlanTree(r.plan), "");
    } else {
      ++failures;
      EXPECT_EQ(r.plan, nullptr);
      EXPECT_TRUE(std::isinf(r.cost));
    }
  }
  // The sweep crosses the feasibility boundary.
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
}

TEST_F(EnumeratorTest, BudgetAbortSweepForSDPAndIDP) {
  const Query q = StarQuery(10);
  CostModel cost(catalog_, stats_, q.graph);
  for (size_t budget = 16 * 1024; budget <= 1024 * 1024; budget *= 4) {
    OptimizerOptions opts;
    opts.memory_budget_bytes = budget;
    const OptimizeResult sdp = OptimizeSDP(q, cost, SdpConfig{}, opts);
    if (sdp.feasible) {
      EXPECT_EQ(ValidatePlanTree(sdp.plan), "");
    } else {
      EXPECT_EQ(sdp.plan, nullptr);
    }
  }
}

TEST_F(EnumeratorTest, PlansCostedMonotoneInLevels) {
  const Query q = StarQuery(7);
  CostModel cost(catalog_, stats_, q.graph);
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  Memo memo(&gauge);
  CardinalityEstimator card(q.graph, cost, &gauge);
  OrderingSpace space(q.graph, std::nullopt);
  SearchCounters counters;
  JoinEnumerator enumerator(q.graph, cost, space, &card, &memo, &pool, &gauge,
                            OptimizerOptions{}, &counters);
  enumerator.InstallBaseRelationLeaves();
  uint64_t prev = counters.plans_costed;
  for (int level = 2; level <= 7; ++level) {
    ASSERT_TRUE(enumerator.RunLevel(level));
    EXPECT_GT(counters.plans_costed, prev) << "level " << level;
    prev = counters.plans_costed;
  }
  EXPECT_NE(memo.Find(q.graph.AllRelations()), nullptr);
}

}  // namespace
}  // namespace sdp
