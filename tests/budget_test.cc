#include "common/budget.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/arena.h"

namespace sdp {
namespace {

TEST(OptStatusTest, OkAndRendering) {
  OptStatus ok = OptStatus::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  OptStatus s = OptStatus::Make(OptStatusCode::kDeadlineExceeded, "late");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "DEADLINE_EXCEEDED: late");
  EXPECT_STREQ(OptStatusCodeName(OptStatusCode::kMemoryExceeded),
               "MEMORY_EXCEEDED");
  EXPECT_STREQ(OptStatusCodeName(OptStatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(OptStatusCodeName(OptStatusCode::kInternal), "INTERNAL");
}

TEST(ResourceBudgetTest, UnlimitedBudgetNeverTrips) {
  ResourceBudget budget(ResourceBudget::Limits{});
  budget.Arm();
  for (int i = 0; i < 100000; ++i) {
    ASSERT_EQ(budget.CheckPoint(), OptStatusCode::kOk);
  }
  EXPECT_EQ(budget.checkpoints(), 100000u);
}

TEST(ResourceBudgetTest, DeadlineTripsAndLatches) {
  ResourceBudget::Limits limits;
  limits.deadline_seconds = 0.02;
  limits.check_interval = 1;  // Consult the clock at every checkpoint.
  ResourceBudget budget(limits);
  budget.Arm();
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kDeadlineExceeded);
  // Latched: stays tripped without further slow checks.
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kDeadlineExceeded);
  EXPECT_FALSE(budget.status().ok());
  EXPECT_LT(budget.RemainingSeconds(), 0);
}

TEST(ResourceBudgetTest, PlansCostedCapTrips) {
  ResourceBudget::Limits limits;
  limits.max_plans_costed = 100;
  ResourceBudget budget(limits);
  budget.Arm();
  budget.SetPlansCosted(100);
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kOk);  // Cap is inclusive.
  budget.SetPlansCosted(101);
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kMemoryExceeded);
}

TEST(ResourceBudgetTest, MemoryGaugeTrips) {
  ResourceBudget::Limits limits;
  limits.memory_budget_bytes = 1 << 10;
  ResourceBudget budget(limits);
  budget.Arm();
  MemoryGauge gauge;
  budget.AttachGauge(&gauge);
  gauge.Charge(512);
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kOk);
  gauge.Charge(1024);
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kMemoryExceeded);
}

TEST(ResourceBudgetTest, CancelTokenObservedAtSlowCheck) {
  CancelToken token;
  ResourceBudget::Limits limits;
  limits.check_interval = 4;
  ResourceBudget budget(limits, &token);
  budget.Arm();
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kOk);
  token.Cancel();
  // The token is only consulted every check_interval checkpoints, so a
  // trip arrives within one interval, not necessarily immediately.
  OptStatusCode code = OptStatusCode::kOk;
  for (int i = 0; i < 8 && code == OptStatusCode::kOk; ++i) {
    code = budget.CheckPoint();
  }
  EXPECT_EQ(code, OptStatusCode::kCancelled);
}

TEST(ResourceBudgetTest, CancelAtCheckpointIsExact) {
  ResourceBudget::Limits limits;
  limits.cancel_at_checkpoint = 37;
  ResourceBudget budget(limits);
  budget.Arm();
  for (int i = 1; i <= 36; ++i) {
    ASSERT_EQ(budget.CheckPoint(), OptStatusCode::kOk) << "checkpoint " << i;
  }
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kCancelled);
}

TEST(ResourceBudgetTest, TripFromOutsideLatchesAndIgnoresOk) {
  ResourceBudget budget(ResourceBudget::Limits{});
  budget.Arm();
  budget.Trip(OptStatusCode::kOk, "ignored");
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kOk);
  budget.Trip(OptStatusCode::kInternal, "boom");
  EXPECT_EQ(budget.CheckPoint(), OptStatusCode::kInternal);
  // First trip wins.
  budget.Trip(OptStatusCode::kCancelled, "later");
  EXPECT_EQ(budget.code(), OptStatusCode::kInternal);
  EXPECT_EQ(budget.status().message, "boom");
}

TEST(ResourceBudgetTest, ResetForRetryClearsMemoryTripOnly) {
  ResourceBudget budget(ResourceBudget::Limits{});
  budget.Arm();

  budget.Trip(OptStatusCode::kMemoryExceeded, "memo too big");
  EXPECT_TRUE(budget.ResetForRetry());
  EXPECT_EQ(budget.code(), OptStatusCode::kOk);

  // An internal defect also clears: the ladder retries it on a cheaper
  // rung (the defect may be rung-specific).
  budget.Trip(OptStatusCode::kInternal, "bad plan");
  EXPECT_TRUE(budget.ResetForRetry());

  // Cancellation outlasts any rung.
  budget.Trip(OptStatusCode::kCancelled, "user gave up");
  EXPECT_FALSE(budget.ResetForRetry());
  EXPECT_EQ(budget.code(), OptStatusCode::kCancelled);
}

TEST(ResourceBudgetTest, ResetForRetryReChecksDeadline) {
  ResourceBudget::Limits limits;
  limits.deadline_seconds = 0.01;
  ResourceBudget budget(limits);
  budget.Arm();
  budget.Trip(OptStatusCode::kMemoryExceeded, "memo too big");
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  // No time left: the retry is refused and the status re-latches as a
  // deadline trip, not the stale memory trip.
  EXPECT_FALSE(budget.ResetForRetry());
  EXPECT_EQ(budget.code(), OptStatusCode::kDeadlineExceeded);
}

TEST(ResourceBudgetTest, ElapsedAndRemaining) {
  ResourceBudget::Limits limits;
  limits.deadline_seconds = 60;
  ResourceBudget budget(limits);
  EXPECT_FALSE(budget.armed());
  budget.Arm();
  EXPECT_TRUE(budget.armed());
  EXPECT_GE(budget.ElapsedSeconds(), 0);
  EXPECT_GT(budget.RemainingSeconds(), 59);
  EXPECT_TRUE(budget.has_deadline());
}

}  // namespace
}  // namespace sdp
