// Observability layer tests: flight-recorder ring semantics (wraparound,
// torn-write safety under concurrent snapshots), causal ordering against
// the trace collector's ground truth, deterministic crash dumps under
// seeded fault replay, and the live introspection endpoints (routing,
// Prometheus text shape, raw-socket behavior, concurrent scrapes while
// optimizing).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "catalog/catalog.h"
#include "common/budget.h"
#include "common/fault_injection.h"
#include "cost/cost_model.h"
#include "harness/experiment.h"
#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "obs/introspection.h"
#include "obs/recorder_export.h"
#include "optimizer/fallback.h"
#include "query/topology.h"
#include "service/optimizer_service.h"
#include "stats/column_stats.h"
#include "trace/trace.h"
#include "trace/trace_collector.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// Every test starts from an empty, enabled recorder; the rings themselves
// persist across tests (thread-local registration is process-lifetime).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::Global().ResetForTesting();
    FlightRecorder::Global().Enable(true);
  }
  void TearDown() override {
    FlightRecorder::Global().Enable(false);
    FlightRecorder::Global().ResetForTesting();
  }
};

// ---------------------------------------------------------------------------
// Ring semantics

TEST_F(ObsTest, RingWraparoundKeepsMostRecentEvents) {
  FlightRecorder& rec = FlightRecorder::Global();
  const uint64_t total = FlightRecorder::kRingEvents + 100;
  for (uint64_t i = 0; i < total; ++i) {
    rec.Record(ObsKind::kLevelBegin, /*code=*/0, /*a=*/0, /*b=*/i);
  }
  const ObsSnapshot snap = rec.Snapshot();
  // The ring holds the last kRingEvents events, minus the one slot a
  // concurrent writer could have been mid-overwriting (the snapshot cannot
  // prove it quiescent, so it is conservatively dropped).  The 100 oldest
  // events were overwritten outright; all are accounted as dropped.
  ASSERT_EQ(snap.events.size(), FlightRecorder::kRingEvents - 1);
  EXPECT_EQ(snap.dropped, 101u);
  // The survivors are the most recent events, in seq order, gap-free.
  for (size_t i = 0; i < snap.events.size(); ++i) {
    EXPECT_EQ(snap.events[i].b, 101 + i);
    EXPECT_EQ(snap.events[i].seq, 101 + i);
  }
  EXPECT_EQ(rec.events_recorded(), total);
}

TEST_F(ObsTest, DisabledRecorderRecordsNothing) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Enable(false);
  for (int i = 0; i < 64; ++i) rec.Record(ObsKind::kCacheHit, 0, 0, i);
  EXPECT_EQ(rec.events_recorded(), 0u);
  EXPECT_TRUE(rec.Snapshot().events.empty());
}

TEST_F(ObsTest, ScopedRequestAttributesAndRestores) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Record(ObsKind::kCacheMiss);
  {
    FlightRecorder::ScopedRequest req(42);
    rec.Record(ObsKind::kCacheHit);
    {
      FlightRecorder::ScopedRequest nested(43);
      rec.Record(ObsKind::kCacheFill);
    }
    rec.Record(ObsKind::kCacheHit);
  }
  rec.Record(ObsKind::kCacheMiss);
  const ObsSnapshot snap = rec.Snapshot();
  ASSERT_EQ(snap.events.size(), 5u);
  EXPECT_EQ(snap.events[0].request_id, 0u);
  EXPECT_EQ(snap.events[1].request_id, 42u);
  EXPECT_EQ(snap.events[2].request_id, 43u);
  EXPECT_EQ(snap.events[3].request_id, 42u);
  EXPECT_EQ(snap.events[4].request_id, 0u);
}

// 8 writer threads hammer their rings (each wraps many times) while a
// snapshotter drains continuously.  Every event a snapshot returns must be
// internally consistent -- payload checksum intact, no duplicated seq --
// proving overwritten slots are discarded rather than returned torn.
// Under TSan this also proves the ring writes/reads are race-annotated
// correctly.
TEST_F(ObsTest, SnapshotUnderConcurrentWritersIsNeverTorn) {
  FlightRecorder& rec = FlightRecorder::Global();
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 3 * FlightRecorder::kRingEvents;
  std::atomic<bool> go{false};
  std::atomic<int> done{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      const uint64_t tag = 0x1000 + static_cast<uint64_t>(t);
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        // d carries a checksum of the other payload words: a torn slot
        // (old d with new b/c or vice versa) would break it.
        rec.Record(ObsKind::kLevelBegin, /*code=*/0,
                   /*a=*/static_cast<uint32_t>(t), /*b=*/i, /*c=*/tag,
                   /*d=*/i ^ tag);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }

  go.store(true, std::memory_order_release);
  uint64_t snapshots_taken = 0;
  while (done.load(std::memory_order_acquire) < kWriters) {
    // A snapshot racing fast writers may retain few (on a single core,
    // sometimes zero) events -- whatever it does return must be intact.
    const ObsSnapshot snap = rec.Snapshot();
    ++snapshots_taken;
    std::set<uint64_t> seqs;
    for (const ObsEvent& ev : snap.events) {
      ASSERT_EQ(ev.kind, static_cast<uint8_t>(ObsKind::kLevelBegin));
      ASSERT_EQ(ev.d, ev.b ^ ev.c) << "torn event at seq " << ev.seq;
      ASSERT_TRUE(seqs.insert(ev.seq).second) << "duplicate seq " << ev.seq;
    }
  }
  for (std::thread& w : writers) w.join();

  // Final quiescent snapshot: every ring retains its last kRingEvents
  // events; everything older is reported dropped, nothing is lost twice.
  const ObsSnapshot final_snap = rec.Snapshot();
  EXPECT_EQ(final_snap.events.size() + final_snap.dropped,
            kWriters * kPerWriter);
  for (const ObsEvent& ev : final_snap.events) {
    EXPECT_EQ(ev.d, ev.b ^ ev.c);
  }
  EXPECT_GT(final_snap.events.size(), 0u);
  EXPECT_GT(snapshots_taken, 0u);
}

// ---------------------------------------------------------------------------
// Causal ordering vs the trace collector

class ObsQueryTest : public ObsTest {
 protected:
  ObsQueryTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  Query MakeQuery(Topology t, int n, uint64_t seed) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec).front();
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

// The recorder's level spans come from the same TraceLevelScope objects
// that feed the trace collector, so a run observed by both must yield the
// same (phase, level) sequence in the same causal order.
TEST_F(ObsQueryTest, LevelEventsMatchTraceCollectorGroundTruth) {
  const Query q = MakeQuery(Topology::kStarChain, 9, 5);
  CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
  TraceCollector collector;
  OptimizerOptions opt;
  opt.tracer = &collector;
  const OptimizeResult res = RunAlgorithm(AlgorithmSpec::SDP(), q, cost, opt);
  ASSERT_TRUE(res.feasible);

  // Ground truth: the collector's begin/end stream, in arrival order.
  std::vector<std::pair<std::string, int>> expected;
  for (const TraceCollector::Recorded& r : collector.events()) {
    if (const auto* b = std::get_if<TraceLevelBegin>(&r.payload)) {
      expected.emplace_back(std::string("begin/") + b->phase, b->level);
    } else if (const auto* e = std::get_if<TraceLevelEnd>(&r.payload)) {
      expected.emplace_back(std::string("end/") + e->phase, e->level);
    }
  }
  ASSERT_FALSE(expected.empty());

  std::vector<std::pair<std::string, int>> recorded;
  uint64_t prev_seq = 0;
  bool first = true;
  for (const ObsEvent& ev : FlightRecorder::Global().Snapshot().events) {
    ASSERT_TRUE(first || ev.seq > prev_seq) << "snapshot not seq-ordered";
    first = false;
    prev_seq = ev.seq;
    if (ev.kind == static_cast<uint8_t>(ObsKind::kLevelBegin)) {
      recorded.emplace_back(std::string("begin/") + ObsPhaseName(ev.code),
                            static_cast<int>(ev.a));
    } else if (ev.kind == static_cast<uint8_t>(ObsKind::kLevelEnd)) {
      recorded.emplace_back(std::string("end/") + ObsPhaseName(ev.code),
                            static_cast<int>(ev.a));
    }
  }
  EXPECT_EQ(recorded, expected);
}

// ---------------------------------------------------------------------------
// Deterministic crash dumps under fault replay

// Two same-seed runs must produce byte-identical deterministic dumps, at
// serial and parallel enumeration alike: the default export omits timing,
// payloads are timing-free, and faults replay deterministically.
TEST_F(ObsQueryTest, FaultReplayProducesByteIdenticalDumps) {
  const Query q = MakeQuery(Topology::kStarChain, 9, 11);
  CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);

  const auto run_and_dump = [&](int opt_threads,
                                const std::string& path) -> std::string {
    FlightRecorder::Global().ResetForTesting();
    FlightRecorder::Global().Enable(true);
    FaultInjectionScope faults(/*seed=*/21, "cost.nan@3");
    EXPECT_TRUE(faults.ok()) << faults.error();
    FlightRecorder::ScopedRequest req(1);
    FallbackConfig config;
    config.start_rung = FallbackRung::kSDP;
    config.max_rung = FallbackRung::kGreedy;
    ResourceBudget budget{ResourceBudget::Limits{}};
    OptimizerOptions opt;
    opt.budget = &budget;
    opt.opt_threads = opt_threads;
    const OptimizeResult res = OptimizeWithFallback(q, cost, config, opt);
    // The injected NaN either failed the run with a typed status or the
    // ladder recovered; both leave a fault_fired event behind.
    EXPECT_TRUE(res.feasible || !res.status.ok());
    std::string error;
    EXPECT_TRUE(DumpFlightRecorderToFile(path, &error)) << error;
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };

  const std::string dir = ::testing::TempDir();
  for (int opt_threads : {1, 4}) {
    const std::string tag = std::to_string(opt_threads);
    const std::string a = run_and_dump(opt_threads, dir + "obs_dump_a" + tag);
    const std::string b = run_and_dump(opt_threads, dir + "obs_dump_b" + tag);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "non-deterministic dump at opt_threads=" << opt_threads;
    EXPECT_NE(a.find("\"event\":\"fault_fired\""), std::string::npos);
    EXPECT_NE(a.find("\"site\":\"cost.nan\""), std::string::npos);
    // Deterministic dumps must not leak wall-clock timing.
    EXPECT_EQ(a.find("ts_ns"), std::string::npos);
  }
}

// End-to-end: a fault firing inside a service request triggers the
// automatic crash dump into the configured directory.
TEST_F(ObsQueryTest, ServiceWritesCrashDumpWhenFaultFires) {
  const std::string dump_dir =
      ::testing::TempDir() + "obs_service_dumps";
  std::filesystem::remove_all(dump_dir);
  std::filesystem::create_directories(dump_dir);

  FaultInjectionScope faults(/*seed=*/3, "cost.nan@2");
  ASSERT_TRUE(faults.ok()) << faults.error();

  ServiceConfig config;
  config.num_threads = 1;
  config.flight_dump_dir = dump_dir;
  OptimizerService service(catalog_, stats_, config);
  ServiceRequest request;
  request.query = MakeQuery(Topology::kStar, 8, 2);
  request.fallback_enabled = true;
  const ServiceResult result = service.OptimizeSync(std::move(request));
  ASSERT_TRUE(result.ok()) << result.error;

  std::vector<std::string> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dump_dir)) {
    dumps.push_back(entry.path().filename().string());
  }
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].rfind("flight-req1-", 0), 0u) << dumps[0];
  std::ifstream in(dump_dir + "/" + dumps[0]);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"event\":\"fault_fired\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"event\":\"request_end\""), std::string::npos);
  EXPECT_EQ(service.metrics().flight_dumps.load(), 1u);
}

// ---------------------------------------------------------------------------
// Introspection endpoints

// Loose Prometheus 0.0.4 lint: every non-comment line is
// `name[{labels}] value`, and every sample's metric family has HELP+TYPE.
void LintPrometheusText(const std::string& text) {
  std::set<std::string> with_help;
  std::set<std::string> with_type;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      with_help.insert(line.substr(7, line.find(' ', 7) - 7));
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      with_type.insert(line.substr(7, line.find(' ', 7) - 7));
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    size_t name_end = 0;
    while (name_end < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[name_end])) ||
            line[name_end] == '_' || line[name_end] == ':')) {
      ++name_end;
    }
    ASSERT_GT(name_end, 0u) << "sample without name: " << line;
    std::string name = line.substr(0, name_end);
    size_t value_at = name_end;
    if (value_at < line.size() && line[value_at] == '{') {
      value_at = line.find('}', value_at);
      ASSERT_NE(value_at, std::string::npos) << "unclosed labels: " << line;
      ++value_at;
    }
    ASSERT_LT(value_at, line.size()) << "sample without value: " << line;
    ASSERT_EQ(line[value_at], ' ') << "malformed sample: " << line;
    const std::string value = line.substr(value_at + 1);
    char* end = nullptr;
    strtod(value.c_str(), &end);
    ASSERT_TRUE(end != nullptr && *end == '\0')
        << "non-numeric value in: " << line;
    // Histogram series share the base family's HELP/TYPE.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t n = name.size(), s = strlen(suffix);
      if (n > s && name.compare(n - s, s, suffix) == 0) {
        name = name.substr(0, n - s);
        break;
      }
    }
    EXPECT_TRUE(with_help.count(name)) << "sample without HELP: " << name;
    EXPECT_TRUE(with_type.count(name)) << "sample without TYPE: " << name;
  }
}

TEST_F(ObsQueryTest, IntrospectionEndpointsServeAndRoute) {
  ServiceConfig config;
  config.num_threads = 2;
  OptimizerService service(catalog_, stats_, config);
  // One miss then one hit so /tracez and the cache gauges have content.
  for (int i = 0; i < 2; ++i) {
    ServiceRequest request;
    request.query = MakeQuery(Topology::kChain, 7, 1);
    ASSERT_TRUE(service.OptimizeSync(std::move(request)).ok());
  }

  IntrospectionServer server(&service);
  const auto get = [&](const std::string& path, const std::string& query =
                           std::string()) {
    HttpRequest req;
    req.method = "GET";
    req.path = path;
    req.query = query;
    return server.Handle(req);
  };

  const HttpResponse index = get("/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);

  const HttpResponse metrics = get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  LintPrometheusText(metrics.body);
  for (const char* series :
       {"sdp_service_requests_completed_total", "sdp_service_cache_hits_total",
        "sdp_service_rung_dp_total", "sdp_service_rung_greedy_total",
        "sdp_service_parallel_scan_seconds_total",
        "sdp_service_parallel_merge_seconds_total",
        "sdp_service_flight_dumps_total", "sdp_service_plan_cache_entries",
        "sdp_service_plan_cache_resident_bytes"}) {
    EXPECT_NE(metrics.body.find(series), std::string::npos)
        << "missing series " << series;
  }
  // The warm hit left a resident compiled plan: the byte gauge must be
  // live, not a hardcoded zero.
  EXPECT_EQ(metrics.body.find("sdp_service_plan_cache_resident_bytes 0\n"),
            std::string::npos);

  const HttpResponse statusz = get("/statusz");
  EXPECT_EQ(statusz.status, 200);
  for (const char* needle :
       {"build_sha", "uptime_seconds", "[breakers]", "dp: closed",
        "greedy: closed", "[admission]", "[flight_recorder]"}) {
    EXPECT_NE(statusz.body.find(needle), std::string::npos)
        << "missing " << needle << " in:\n" << statusz.body;
  }

  const HttpResponse tracez = get("/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("request_end"), std::string::npos);
  EXPECT_NE(tracez.body.find("\"status\":\"OK\""), std::string::npos);
  // Status filtering: no request failed, so filtering for deadline
  // timelines yields none.
  const HttpResponse filtered = get("/tracez", "status=DEADLINE_EXCEEDED");
  EXPECT_EQ(filtered.status, 200);
  EXPECT_EQ(filtered.body.find("request_end"), std::string::npos);
  const HttpResponse limited = get("/tracez", "limit=1");
  EXPECT_EQ(limited.status, 200);

  const HttpResponse flightz = get("/flightrecorderz");
  EXPECT_EQ(flightz.status, 200);
  EXPECT_NE(flightz.body.find("\"meta\":\"flight_recorder\""),
            std::string::npos);
  EXPECT_NE(flightz.body.find("ts_ns"), std::string::npos);

  EXPECT_EQ(get("/nope").status, 404);
}

// Raw-socket exchange against a live server: sends `payload`, returns
// whatever the server wrote back.
std::string RawHttpExchange(int port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n =
        ::send(fd, payload.data() + sent, payload.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ObsQueryTest, HttpServerSocketSmoke) {
  ServiceConfig config;
  config.num_threads = 1;
  OptimizerService service(catalog_, stats_, config);
  {
    ServiceRequest request;
    request.query = MakeQuery(Topology::kChain, 6, 1);
    ASSERT_TRUE(service.OptimizeSync(std::move(request)).ok());
  }

  IntrospectionServer server(&service);
  std::string error;
  ASSERT_TRUE(server.Start(/*port=*/0, &error)) << error;
  ASSERT_GT(server.port(), 0);

  const std::string ok = RawHttpExchange(
      server.port(), "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_EQ(ok.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << ok.substr(0, 80);
  EXPECT_NE(ok.find("Content-Length:"), std::string::npos);
  EXPECT_NE(ok.find("sdp_service_requests_completed_total"),
            std::string::npos);

  const std::string malformed =
      RawHttpExchange(server.port(), "complete nonsense\r\n\r\n");
  EXPECT_EQ(malformed.rfind("HTTP/1.1 400 ", 0), 0u) << malformed.substr(0, 80);

  const std::string post = RawHttpExchange(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n"
      "\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.1 405 ", 0), 0u) << post.substr(0, 80);

  const std::string missing = RawHttpExchange(
      server.port(), "GET /missing HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404 ", 0), 0u);

  server.Stop();
}

// All four endpoints answer concurrently while the service is actively
// optimizing -- snapshots, metric reads and breaker peeks must never block
// or race the hot path (TSan enforces the latter).
TEST_F(ObsQueryTest, EndpointsRespondWhileOptimizing) {
  ServiceConfig config;
  config.num_threads = 2;
  config.cache_enabled = false;  // Every request does real enumeration.
  OptimizerService service(catalog_, stats_, config);

  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 12; ++i) {
    ServiceRequest request;
    request.query = MakeQuery(Topology::kStarChain, 9, 1 + i % 3);
    request.fallback_enabled = true;
    futures.push_back(service.Submit(std::move(request)));
  }

  IntrospectionServer server(&service);
  const char* paths[] = {"/metrics", "/statusz", "/tracez",
                         "/flightrecorderz"};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < 16; ++i) {
        HttpRequest req;
        req.method = "GET";
        req.path = paths[(t + i) % 4];
        const HttpResponse resp = server.Handle(req);
        if (resp.status != 200 || resp.body.empty()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& s : scrapers) s.join();
  for (auto& f : futures) {
    const ServiceResult r = f.get();
    EXPECT_TRUE(r.ok());
  }
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace sdp
