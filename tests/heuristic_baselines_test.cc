#include "optimizer/heuristic_baselines.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "optimizer/dp.h"
#include "query/topology.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  std::vector<Query> Workload(Topology t, int n, int instances,
                              uint64_t seed = 61) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = instances;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec);
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(BaselinesTest, GOOProducesValidPlansBoundedByDP) {
  for (Topology t : {Topology::kChain, Topology::kStar, Topology::kStarChain}) {
    for (const Query& q : Workload(t, 10, 3)) {
      CostModel cost(catalog_, stats_, q.graph);
      const OptimizeResult dp = OptimizeDP(q, cost);
      const OptimizeResult goo = OptimizeGOO(q, cost);
      ASSERT_TRUE(dp.feasible && goo.feasible);
      EXPECT_EQ(ValidatePlanTree(goo.plan), "");
      EXPECT_EQ(goo.plan->rels, q.graph.AllRelations());
      EXPECT_GE(goo.cost, dp.cost - dp.cost * 1e-9);
      // GOO's effort is tiny compared to DP's.
      EXPECT_LT(goo.counters.plans_costed, dp.counters.plans_costed / 5);
    }
  }
}

TEST_F(BaselinesTest, GOOScalesToLargeStars) {
  Catalog big = MakeSyntheticCatalog(ExtendedSchemaConfig(50));
  StatsCatalog stats = SynthesizeStats(big);
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 40;
  spec.num_instances = 1;
  const Query q = GenerateWorkload(big, spec).front();
  CostModel cost(big, stats, q.graph);
  const OptimizeResult r = OptimizeGOO(q, cost);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(ValidatePlanTree(r.plan), "");
  EXPECT_LT(r.peak_memory_mb, 8);
}

TEST_F(BaselinesTest, RandomizedProducesValidPlansBoundedByDP) {
  for (const Query& q : Workload(Topology::kStarChain, 10, 3)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult rnd = OptimizeRandomized(q, cost);
    ASSERT_TRUE(dp.feasible && rnd.feasible);
    EXPECT_EQ(ValidatePlanTree(rnd.plan), "");
    EXPECT_EQ(rnd.plan->rels, q.graph.AllRelations());
    EXPECT_GE(rnd.cost, dp.cost - dp.cost * 1e-9);
  }
}

TEST_F(BaselinesTest, RandomizedIsDeterministicPerSeed) {
  const Query q = Workload(Topology::kStar, 9, 1).front();
  CostModel cost(catalog_, stats_, q.graph);
  RandomizedConfig config;
  config.seed = 99;
  const OptimizeResult a = OptimizeRandomized(q, cost, config);
  const OptimizeResult b = OptimizeRandomized(q, cost, config);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(a.plan->Shape(), b.plan->Shape());
}

TEST_F(BaselinesTest, MoreRestartsNeverHurt) {
  const Query q = Workload(Topology::kStarChain, 11, 1).front();
  CostModel cost(catalog_, stats_, q.graph);
  RandomizedConfig few;
  few.restarts = 1;
  RandomizedConfig many = few;
  many.restarts = 12;
  const OptimizeResult a = OptimizeRandomized(q, cost, few);
  const OptimizeResult b = OptimizeRandomized(q, cost, many);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_LE(b.cost, a.cost + a.cost * 1e-12);
}

TEST_F(BaselinesTest, OrderedQueriesDeliverOrdering) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 9;
  spec.num_instances = 2;
  spec.ordered = true;
  spec.seed = 15;
  for (const Query& q : GenerateWorkload(catalog_, spec)) {
    CostModel cost(catalog_, stats_, q.graph);
    const int eq = q.graph.EquivClass(q.order_by->column);
    const OptimizeResult goo = OptimizeGOO(q, cost);
    const OptimizeResult rnd = OptimizeRandomized(q, cost);
    ASSERT_TRUE(goo.feasible && rnd.feasible);
    EXPECT_EQ(goo.plan->ordering, eq);
    EXPECT_EQ(rnd.plan->ordering, eq);
  }
}

TEST_F(BaselinesTest, BudgetRespected) {
  const Query q = Workload(Topology::kStar, 12, 1).front();
  CostModel cost(catalog_, stats_, q.graph);
  OptimizerOptions tiny;
  tiny.max_plans_costed = 10;
  EXPECT_FALSE(OptimizeGOO(q, cost, tiny).feasible);
  EXPECT_FALSE(OptimizeRandomized(q, cost, RandomizedConfig{}, tiny).feasible);
}

TEST_F(BaselinesTest, SDPBeatsOrMatchesCheapBaselinesOnStars) {
  // The positioning claim: SDP's quality dominates the cheap heuristics on
  // hub-heavy graphs (that is what the extra search effort buys).
  double sdp_worse = 0, goo_worse = 0, rnd_worse = 0;
  int n = 0;
  for (const Query& q : Workload(Topology::kStar, 12, 5, 77)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    ASSERT_TRUE(dp.feasible);
    sdp_worse += OptimizeSDP(q, cost).cost / dp.cost;
    goo_worse += OptimizeGOO(q, cost).cost / dp.cost;
    rnd_worse += OptimizeRandomized(q, cost).cost / dp.cost;
    ++n;
  }
  EXPECT_LE(sdp_worse / n, goo_worse / n + 1e-9);
  EXPECT_LE(sdp_worse / n, rnd_worse / n + 1e-9);
}

}  // namespace
}  // namespace sdp
