#include "query/join_graph.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "query/topology.h"

namespace sdp {
namespace {

JoinGraph SimpleGraph(int n) {
  std::vector<int> ids(n, 0);
  return JoinGraph(ids);
}

TEST(JoinGraphTest, AddEdgeBuildsAdjacency) {
  JoinGraph g = SimpleGraph(4);
  g.AddEdge(ColumnRef{0, 1}, ColumnRef{1, 2});
  g.AddEdge(ColumnRef{1, 3}, ColumnRef{2, 4});
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Degree(3), 0);
  EXPECT_TRUE(g.Adjacency(1).Contains(0));
  EXPECT_TRUE(g.Adjacency(1).Contains(2));
}

TEST(JoinGraphTest, DuplicateEdgesIgnored) {
  JoinGraph g = SimpleGraph(3);
  g.AddEdge(ColumnRef{0, 1}, ColumnRef{1, 2});
  g.AddEdge(ColumnRef{1, 2}, ColumnRef{0, 1});  // Same edge, flipped.
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST(JoinGraphTest, Connectivity) {
  JoinGraph g = SimpleGraph(5);
  g.AddEdge(ColumnRef{0, 0}, ColumnRef{1, 0});
  g.AddEdge(ColumnRef{1, 1}, ColumnRef{2, 0});
  g.AddEdge(ColumnRef{3, 0}, ColumnRef{4, 0});
  EXPECT_TRUE(g.IsConnected(RelSet::Single(0).With(1).With(2)));
  EXPECT_TRUE(g.IsConnected(RelSet::Single(2)));
  EXPECT_FALSE(g.IsConnected(RelSet::Single(0).With(2)));   // 1 missing.
  EXPECT_FALSE(g.IsConnected(RelSet::Single(0).With(3)));   // Separate comps.
  EXPECT_FALSE(g.IsConnected(RelSet()));
}

TEST(JoinGraphTest, NeighborsAndAdjacency) {
  JoinGraph g = SimpleGraph(4);
  g.AddEdge(ColumnRef{0, 0}, ColumnRef{1, 0});
  g.AddEdge(ColumnRef{1, 1}, ColumnRef{2, 0});
  g.AddEdge(ColumnRef{2, 1}, ColumnRef{3, 0});
  EXPECT_EQ(g.Neighbors(RelSet::Single(1)), RelSet::Single(0).With(2));
  EXPECT_EQ(g.Neighbors(RelSet::Single(0).With(1)), RelSet::Single(2));
  EXPECT_TRUE(g.AreAdjacent(RelSet::Single(0), RelSet::Single(1)));
  EXPECT_FALSE(g.AreAdjacent(RelSet::Single(0), RelSet::Single(2).With(3)));
}

TEST(JoinGraphTest, ConnectingAndInternalEdges) {
  JoinGraph g = SimpleGraph(4);
  g.AddEdge(ColumnRef{0, 0}, ColumnRef{1, 0});  // edge 0
  g.AddEdge(ColumnRef{1, 1}, ColumnRef{2, 0});  // edge 1
  g.AddEdge(ColumnRef{0, 1}, ColumnRef{2, 1});  // edge 2
  const RelSet a = RelSet::Single(0).With(1);
  const RelSet b = RelSet::Single(2);
  EXPECT_EQ(g.ConnectingEdges(a, b), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.InternalEdges(a), (std::vector<int>{0}));
  EXPECT_EQ(g.InternalEdges(g.AllRelations().Without(3)),
            (std::vector<int>{0, 1, 2}));
}

TEST(JoinGraphTest, EquivClasses) {
  JoinGraph g = SimpleGraph(3);
  g.AddEdge(ColumnRef{0, 5}, ColumnRef{1, 6});
  g.AddEdge(ColumnRef{1, 6}, ColumnRef{2, 7});  // Shares 1.c6.
  const int eq0 = g.EquivClass(ColumnRef{0, 5});
  EXPECT_GE(eq0, 0);
  EXPECT_EQ(g.EquivClass(ColumnRef{1, 6}), eq0);
  EXPECT_EQ(g.EquivClass(ColumnRef{2, 7}), eq0);
  EXPECT_EQ(g.EquivClass(ColumnRef{0, 0}), -1);
  EXPECT_EQ(g.EquivClassRels(eq0), RelSet::FirstN(3));
}

TEST(JoinGraphTest, ImpliedEdgesFromSharedColumns) {
  // R0.a = R1.b and R1.b = R2.c imply R0.a = R2.c (the PostgreSQL rewriter
  // behaviour the paper relies on, Section 2.1.4).
  JoinGraph g = SimpleGraph(3);
  g.AddEdge(ColumnRef{0, 5}, ColumnRef{1, 6});
  g.AddEdge(ColumnRef{1, 6}, ColumnRef{2, 7});
  EXPECT_EQ(g.Degree(0), 1);
  g.AddImpliedEdges();
  EXPECT_EQ(g.edges().size(), 3u);
  EXPECT_TRUE(g.Adjacency(0).Contains(2));
  // Idempotent.
  g.AddImpliedEdges();
  EXPECT_EQ(g.edges().size(), 3u);
}

TEST(JoinGraphTest, ImpliedEdgesCanCreateHubs) {
  // A 4-chain whose middle column is shared on both sides: closure turns
  // relation degrees >= 3, creating a hub where there was none.
  JoinGraph g = SimpleGraph(4);
  g.AddEdge(ColumnRef{0, 0}, ColumnRef{1, 1});
  g.AddEdge(ColumnRef{1, 1}, ColumnRef{2, 2});
  g.AddEdge(ColumnRef{2, 2}, ColumnRef{3, 3});
  g.AddImpliedEdges();
  // All four columns are one equivalence class: complete graph.
  for (int r = 0; r < 4; ++r) EXPECT_EQ(g.Degree(r), 3);
}

class TopologyTest : public ::testing::Test {
 protected:
  TopologyTest() : catalog_(MakeSyntheticCatalog(SchemaConfig{})) {}
  std::vector<int> Tables(int n) const {
    std::vector<int> t;
    for (int i = 0; i < n; ++i) t.push_back(i);
    return t;
  }
  Catalog catalog_;
};

TEST_F(TopologyTest, ChainShape) {
  const JoinGraph g = MakeChainGraph(catalog_, Tables(6));
  EXPECT_EQ(g.edges().size(), 5u);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(2), 2);
  EXPECT_EQ(g.Degree(5), 1);
  EXPECT_TRUE(g.IsConnected(g.AllRelations()));
  // No shared join columns: every column is in a 2-member class.
  for (int eq = 0; eq < g.num_equiv_classes(); ++eq) {
    EXPECT_EQ(g.EquivClassMembers(eq).size(), 2u);
  }
}

TEST_F(TopologyTest, StarShape) {
  const JoinGraph g = MakeStarGraph(catalog_, Tables(8));
  EXPECT_EQ(g.edges().size(), 7u);
  EXPECT_EQ(g.Degree(0), 7);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(g.Degree(i), 1);
  // The first spoke edge is index-supported on both sides.
  const JoinEdge& e = g.edges()[0];
  const ColumnRef hub_side = e.left.rel == 0 ? e.left : e.right;
  EXPECT_EQ(hub_side.col, catalog_.table(g.table_id(0)).indexed_column);
}

TEST_F(TopologyTest, StarSpokesJoinOnIndexedColumns) {
  const JoinGraph g = MakeStarGraph(catalog_, Tables(8));
  for (const JoinEdge& e : g.edges()) {
    const ColumnRef spoke_side = e.left.rel == 0 ? e.right : e.left;
    EXPECT_EQ(spoke_side.col,
              catalog_.table(g.table_id(spoke_side.rel)).indexed_column);
  }
}

TEST_F(TopologyTest, StarChainShape) {
  // 15 relations, paper shape: hub + 10 spokes + 4-chain off spoke 10.
  const JoinGraph g =
      MakeTopologyGraph(Topology::kStarChain, catalog_, Tables(15));
  EXPECT_EQ(g.edges().size(), 14u);
  EXPECT_EQ(g.Degree(0), 10);   // Hub.
  EXPECT_EQ(g.Degree(10), 2);   // Chain head (paper's R11): hub + next.
  EXPECT_EQ(g.Degree(14), 1);   // Chain tail.
  EXPECT_TRUE(g.IsConnected(g.AllRelations()));
}

TEST_F(TopologyTest, CycleShape) {
  const JoinGraph g = MakeCycleGraph(catalog_, Tables(6));
  EXPECT_EQ(g.edges().size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(g.Degree(i), 2);
}

TEST_F(TopologyTest, SnowflakeShape) {
  // 9 relations, 4 first-level spokes: hub degree 4, spokes grow chains.
  const JoinGraph g = MakeSnowflakeGraph(catalog_, Tables(9), 4);
  EXPECT_EQ(g.edges().size(), 8u);
  EXPECT_EQ(g.Degree(0), 4);
  EXPECT_TRUE(g.IsConnected(g.AllRelations()));
  // Every non-hub position has degree 1..3 (spoke with up to two chain
  // children plus the hub edge).
  for (int r = 1; r < 9; ++r) {
    EXPECT_GE(g.Degree(r), 1);
    EXPECT_LE(g.Degree(r), 3);
  }
  // Dispatcher builds it too, without accidental shared join columns.
  JoinGraph via = MakeTopologyGraph(Topology::kSnowflake, catalog_, Tables(9));
  const size_t before = via.edges().size();
  via.AddImpliedEdges();
  EXPECT_EQ(via.edges().size(), before);
}

TEST_F(TopologyTest, CliqueShape) {
  const JoinGraph g = MakeCliqueGraph(catalog_, Tables(5));
  EXPECT_EQ(g.edges().size(), 10u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(g.Degree(i), 4);
}

TEST_F(TopologyTest, NoAccidentalSharedJoinColumns) {
  // Distinct edges must use distinct columns, otherwise implied edges would
  // silently change the topology.
  for (Topology t : {Topology::kChain, Topology::kStar, Topology::kStarChain,
                     Topology::kCycle}) {
    JoinGraph g = MakeTopologyGraph(t, catalog_, Tables(10));
    const size_t before = g.edges().size();
    g.AddImpliedEdges();
    EXPECT_EQ(g.edges().size(), before) << TopologyName(t);
  }
}

TEST_F(TopologyTest, DeterministicConstruction) {
  const JoinGraph a = MakeStarGraph(catalog_, Tables(10));
  const JoinGraph b = MakeStarGraph(catalog_, Tables(10));
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].left, b.edges()[i].left);
    EXPECT_EQ(a.edges()[i].right, b.edges()[i].right);
  }
}

}  // namespace
}  // namespace sdp
