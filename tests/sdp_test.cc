#include "core/sdp.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "metrics/quality.h"
#include "optimizer/dp.h"
#include "query/topology.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

class SdpTest : public ::testing::Test {
 protected:
  SdpTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  std::vector<Query> Workload(Topology t, int n, int instances,
                              bool ordered = false, uint64_t seed = 33) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = instances;
    spec.ordered = ordered;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec);
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(SdpTest, NoPruningOnChains) {
  // Chains have no hubs, so SDP degenerates to exact DP: identical plan
  // cost AND identical search effort (Section 2.1.5: "with SDP, there is
  // no pruning at all for a chain or cycle query").
  for (const Query& q : Workload(Topology::kChain, 10, 4)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult sdp = OptimizeSDP(q, cost);
    ASSERT_TRUE(dp.feasible && sdp.feasible);
    EXPECT_DOUBLE_EQ(sdp.cost, dp.cost);
    EXPECT_EQ(sdp.counters.plans_costed, dp.counters.plans_costed);
    EXPECT_EQ(sdp.counters.jcrs_created, dp.counters.jcrs_created);
  }
}

TEST_F(SdpTest, NoPruningOnCycles) {
  for (const Query& q : Workload(Topology::kCycle, 9, 4)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult sdp = OptimizeSDP(q, cost);
    ASSERT_TRUE(dp.feasible && sdp.feasible);
    EXPECT_DOUBLE_EQ(sdp.cost, dp.cost);
    EXPECT_EQ(sdp.counters.plans_costed, dp.counters.plans_costed);
  }
}

TEST_F(SdpTest, PrunesOnStars) {
  for (const Query& q : Workload(Topology::kStar, 12, 3)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult sdp = OptimizeSDP(q, cost);
    ASSERT_TRUE(dp.feasible && sdp.feasible);
    EXPECT_LT(sdp.counters.jcrs_created, dp.counters.jcrs_created / 2);
    EXPECT_LT(sdp.counters.plans_costed, dp.counters.plans_costed / 2);
  }
}

TEST_F(SdpTest, HighHubThresholdDisablesPruning) {
  // With an unreachable hub degree, SDP must behave exactly like DP.
  SdpConfig config;
  config.hub_degree = 1000;
  for (const Query& q : Workload(Topology::kStar, 9, 2)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult sdp = OptimizeSDP(q, cost, config);
    ASSERT_TRUE(dp.feasible && sdp.feasible);
    EXPECT_DOUBLE_EQ(sdp.cost, dp.cost);
    EXPECT_EQ(sdp.counters.plans_costed, dp.counters.plans_costed);
  }
}

TEST_F(SdpTest, SmallQueriesAreExact) {
  // For N <= 4 there are no pruning levels (2..N-3 empty): SDP == DP.
  for (Topology t : {Topology::kStar, Topology::kClique}) {
    for (const Query& q : Workload(t, 4, 3)) {
      CostModel cost(catalog_, stats_, q.graph);
      const OptimizeResult dp = OptimizeDP(q, cost);
      const OptimizeResult sdp = OptimizeSDP(q, cost);
      EXPECT_DOUBLE_EQ(sdp.cost, dp.cost);
    }
  }
}

TEST_F(SdpTest, PlansAreValidAcrossConfigs) {
  std::vector<SdpConfig> configs(5);
  configs[1].partitioning = SdpConfig::Partitioning::kParentHub;
  configs[2].skyline = SkylineVariant::kFullVector;
  configs[3].skyline = SkylineVariant::kStrong;
  configs[4].localized = false;
  for (const SdpConfig& config : configs) {
    for (const Query& q : Workload(Topology::kStarChain, 11, 2)) {
      CostModel cost(catalog_, stats_, q.graph);
      const OptimizeResult r = OptimizeSDP(q, cost, config);
      ASSERT_TRUE(r.feasible);
      EXPECT_EQ(ValidatePlanTree(r.plan), "");
      EXPECT_EQ(r.plan->rels, q.graph.AllRelations());
    }
  }
}

TEST_F(SdpTest, NeverBeatsDP) {
  for (Topology t : {Topology::kStar, Topology::kStarChain, Topology::kClique}) {
    const int n = t == Topology::kClique ? 8 : 12;
    for (const Query& q : Workload(t, n, 3)) {
      CostModel cost(catalog_, stats_, q.graph);
      const OptimizeResult dp = OptimizeDP(q, cost);
      const OptimizeResult sdp = OptimizeSDP(q, cost);
      ASSERT_TRUE(dp.feasible && sdp.feasible);
      EXPECT_LE(dp.cost, sdp.cost * (1 + 1e-9)) << TopologyName(t);
    }
  }
}

TEST_F(SdpTest, QualityIsRobustOnStars) {
  // The paper's headline claim: SDP always delivers at least a Good plan
  // (within 2x of optimal) on star-bearing graphs.
  int ideal = 0, total = 0;
  for (const Query& q : Workload(Topology::kStar, 13, 10)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult sdp = OptimizeSDP(q, cost);
    ASSERT_TRUE(dp.feasible && sdp.feasible);
    const double ratio = sdp.cost / dp.cost;
    EXPECT_LE(ratio, 2.0);
    if (ClassifyRatio(ratio) == QualityClass::kIdeal) ++ideal;
    ++total;
  }
  // And most plans are ideal.
  EXPECT_GE(ideal * 2, total);
}

TEST_F(SdpTest, Option2NeverProcessesMoreThanOption1) {
  // Table 2.3 direction: the pairwise-union skyline (Option 2) retains a
  // subset of the full-vector skyline's survivors, so it can only process
  // fewer (or equal) JCRs.  The *magnitude* of the gap is
  // landscape-dependent (the paper saw ~2x on its example query); the
  // bench_table_2_3 harness reports the measured value.
  double jcrs_opt1 = 0, jcrs_opt2 = 0;
  for (const Query& q : Workload(Topology::kStar, 12, 5)) {
    CostModel cost(catalog_, stats_, q.graph);
    SdpConfig opt1;
    opt1.skyline = SkylineVariant::kFullVector;
    const OptimizeResult r1 = OptimizeSDP(q, cost, opt1);
    const OptimizeResult r2 = OptimizeSDP(q, cost);
    ASSERT_TRUE(r1.feasible && r2.feasible);
    jcrs_opt1 += static_cast<double>(r1.counters.jcrs_created);
    jcrs_opt2 += static_cast<double>(r2.counters.jcrs_created);
  }
  EXPECT_LE(jcrs_opt2, jcrs_opt1);
  EXPECT_LT(jcrs_opt2, jcrs_opt1 * 0.999);  // Strictly less in aggregate.
}

TEST_F(SdpTest, GlobalPruningIsWeakerThanLocalized) {
  // Table 3.6: global skyline pruning degrades plan quality relative to
  // hub-localized pruning.
  double rho_local = 1, rho_global = 1;
  QualityDistribution local, global;
  for (const Query& q : Workload(Topology::kStarChain, 13, 10)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    SdpConfig gcfg;
    gcfg.localized = false;
    const OptimizeResult l = OptimizeSDP(q, cost);
    const OptimizeResult g = OptimizeSDP(q, cost, gcfg);
    ASSERT_TRUE(dp.feasible && l.feasible && g.feasible);
    local.Add(l.cost / dp.cost);
    global.Add(g.cost / dp.cost);
  }
  rho_local = local.Rho();
  rho_global = global.Rho();
  EXPECT_LE(rho_local, rho_global + 1e-9);
}

TEST_F(SdpTest, StrongSkylineSurvivesAggressivePruning) {
  // Regression: 2-dominance is cyclic and can eliminate every JCR in a
  // partition; the pruner must rescue a survivor so the full relation set
  // stays reachable (previously aborted on stars >= 13 relations).
  SdpConfig strong;
  strong.skyline = SkylineVariant::kStrong;
  for (const Query& q : Workload(Topology::kStar, 13, 4, false, 7)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult r = OptimizeSDP(q, cost, strong);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(ValidatePlanTree(r.plan), "");
    EXPECT_EQ(r.plan->rels, q.graph.AllRelations());
  }
}

TEST_F(SdpTest, OrderedVariantsDeliverOrdering) {
  for (const Query& q : Workload(Topology::kStar, 12, 5, /*ordered=*/true)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult r = OptimizeSDP(q, cost);
    ASSERT_TRUE(r.feasible);
    const int eq = q.graph.EquivClass(q.order_by->column);
    EXPECT_EQ(r.plan->ordering, eq);
    // And quality holds relative to DP on the same ordered query.
    const OptimizeResult dp = OptimizeDP(q, cost);
    EXPECT_LE(r.cost / dp.cost, 2.0);
  }
}

TEST_F(SdpTest, ScalesWhereDPCannot) {
  // Star-20 under the experiments' 64 MB budget: DP infeasible, SDP fine.
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 20;
  spec.num_instances = 1;
  const Query q = GenerateWorkload(catalog_, spec).front();
  CostModel cost(catalog_, stats_, q.graph);
  OptimizerOptions budget;
  budget.memory_budget_bytes = 64ull << 20;
  const OptimizeResult dp = OptimizeDP(q, cost, budget);
  const OptimizeResult sdp = OptimizeSDP(q, cost, SdpConfig{}, budget);
  EXPECT_FALSE(dp.feasible);
  ASSERT_TRUE(sdp.feasible);
  EXPECT_EQ(ValidatePlanTree(sdp.plan), "");
}

TEST_F(SdpTest, ParentHubCloseToRootHub) {
  // The paper uses Root-Hub because it matches Parent-Hub quality with less
  // overhead; verify both produce valid, comparable plans.
  for (const Query& q : Workload(Topology::kStarChain, 12, 5)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    SdpConfig parent;
    parent.partitioning = SdpConfig::Partitioning::kParentHub;
    const OptimizeResult root_r = OptimizeSDP(q, cost);
    const OptimizeResult parent_r = OptimizeSDP(q, cost, parent);
    ASSERT_TRUE(root_r.feasible && parent_r.feasible);
    EXPECT_LE(root_r.cost / dp.cost, 2.0);
    EXPECT_LE(parent_r.cost / dp.cost, 2.0);
  }
}

}  // namespace
}  // namespace sdp
