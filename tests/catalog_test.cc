#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sdp {
namespace {

TEST(CatalogTest, AddAndFind) {
  Catalog c;
  Table t;
  t.name = "orders";
  t.row_count = 1000;
  t.columns.push_back(Column{"o_id", 1000, DataDistribution::kUniform});
  const int id = c.AddTable(std::move(t));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(c.num_tables(), 1);
  EXPECT_EQ(c.FindTable("orders"), 0);
  EXPECT_EQ(c.FindTable("nope"), -1);
  EXPECT_EQ(c.table(0).row_count, 1000u);
}

TEST(CatalogTest, RowWidthTracksColumns) {
  Table t;
  t.columns.resize(24);
  EXPECT_DOUBLE_EQ(t.row_width_bytes(), 24.0 + 8.0 * 24.0);
}

TEST(SyntheticCatalogTest, PaperParameters) {
  const SchemaConfig config;
  const Catalog c = MakeSyntheticCatalog(config);
  ASSERT_EQ(c.num_tables(), 25);

  uint64_t min_rows = UINT64_MAX;
  uint64_t max_rows = 0;
  for (int i = 0; i < c.num_tables(); ++i) {
    const Table& t = c.table(i);
    EXPECT_EQ(t.columns.size(), 24u);
    EXPECT_GE(t.indexed_column, 0);
    EXPECT_LT(t.indexed_column, 24);
    min_rows = std::min(min_rows, t.row_count);
    max_rows = std::max(max_rows, t.row_count);
    for (const Column& col : t.columns) {
      EXPECT_GE(col.domain_size, config.min_domain);
      EXPECT_LE(col.domain_size, config.max_domain);
    }
  }
  // Cardinalities span the configured range end to end.
  EXPECT_EQ(min_rows, config.min_rows);
  EXPECT_EQ(max_rows, config.max_rows);
}

TEST(SyntheticCatalogTest, GeometricProgression) {
  const Catalog c = MakeSyntheticCatalog(SchemaConfig{});
  // Sorted cardinalities should form a geometric ladder with ratio ~1.5.
  std::vector<double> rows;
  for (int i = 0; i < c.num_tables(); ++i) {
    rows.push_back(static_cast<double>(c.table(i).row_count));
  }
  std::sort(rows.begin(), rows.end());
  for (size_t i = 1; i < rows.size(); ++i) {
    const double ratio = rows[i] / rows[i - 1];
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 1.9);
  }
}

TEST(SyntheticCatalogTest, Deterministic) {
  const Catalog a = MakeSyntheticCatalog(SchemaConfig{});
  const Catalog b = MakeSyntheticCatalog(SchemaConfig{});
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (int i = 0; i < a.num_tables(); ++i) {
    EXPECT_EQ(a.table(i).row_count, b.table(i).row_count);
    EXPECT_EQ(a.table(i).indexed_column, b.table(i).indexed_column);
    for (size_t cidx = 0; cidx < a.table(i).columns.size(); ++cidx) {
      EXPECT_EQ(a.table(i).columns[cidx].domain_size,
                b.table(i).columns[cidx].domain_size);
    }
  }
}

TEST(SyntheticCatalogTest, SeedChangesLayout) {
  SchemaConfig other;
  other.seed = 999;
  const Catalog a = MakeSyntheticCatalog(SchemaConfig{});
  const Catalog b = MakeSyntheticCatalog(other);
  bool any_difference = false;
  for (int i = 0; i < a.num_tables() && !any_difference; ++i) {
    any_difference = a.table(i).row_count != b.table(i).row_count ||
                     a.table(i).indexed_column != b.table(i).indexed_column;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SyntheticCatalogTest, TablesByRowCountDesc) {
  const Catalog c = MakeSyntheticCatalog(SchemaConfig{});
  const std::vector<int> order = c.TablesByRowCountDesc();
  ASSERT_EQ(order.size(), 25u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(c.table(order[i - 1]).row_count, c.table(order[i]).row_count);
  }
  // All ids present exactly once.
  std::set<int> uniq(order.begin(), order.end());
  EXPECT_EQ(uniq.size(), 25u);
}

TEST(SyntheticCatalogTest, ExtendedSchemaForScaleup) {
  const SchemaConfig config = ExtendedSchemaConfig(50);
  const Catalog c = MakeSyntheticCatalog(config);
  EXPECT_EQ(c.num_tables(), 50);
  // Wide tables so a 45-spoke star has a distinct hub column per spoke.
  EXPECT_EQ(c.table(0).columns.size(), 64u);
}

}  // namespace
}  // namespace sdp
