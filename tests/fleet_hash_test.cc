#include "fleet/consistent_hash.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sdp {
namespace {

std::vector<std::string> MakeKeys(int n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) {
    keys.push_back("R(1,2,3)|J" + std::to_string(i * 37) +
                   "|algo=3/7|key-" + std::to_string(i));
  }
  return keys;
}

TEST(ConsistentHashTest, DeterministicAcrossInstances) {
  // The router, the bench, and the replicas never exchange ring state;
  // placement agreement rests entirely on this property.
  ConsistentHashRing a(5, 64);
  ConsistentHashRing b(5, 64);
  for (const std::string& key : MakeKeys(500)) {
    EXPECT_EQ(a.Route(key), b.Route(key));
    EXPECT_EQ(a.RouteSequence(key), b.RouteSequence(key));
  }
}

TEST(ConsistentHashTest, SameKeySameReplicaAndHomeAgreesWhenAllLive) {
  ConsistentHashRing ring(3, 64);
  for (const std::string& key : MakeKeys(300)) {
    const int first = ring.Route(key);
    ASSERT_GE(first, 0);
    ASSERT_LT(first, 3);
    EXPECT_EQ(ring.Route(key), first);  // Stable on re-ask.
    EXPECT_EQ(ring.HomeReplica(key), first);
  }
}

TEST(ConsistentHashTest, EveryReplicaOwnsASliceOfTheKeySpace) {
  ConsistentHashRing ring(4, 64);
  std::map<int, int> owned;
  for (const std::string& key : MakeKeys(1000)) ++owned[ring.Route(key)];
  ASSERT_EQ(owned.size(), 4u) << "some replica owns no keys at vnodes=64";
  for (const auto& [replica, count] : owned) {
    // Crude balance bound: no replica owns more than half the space.
    EXPECT_GT(count, 0) << "replica " << replica;
    EXPECT_LT(count, 500) << "replica " << replica;
  }
}

TEST(ConsistentHashTest, RouteSequenceVisitsEveryLiveReplicaOnce) {
  ConsistentHashRing ring(5, 64);
  ring.SetLive(3, false);
  for (const std::string& key : MakeKeys(100)) {
    const std::vector<int> seq = ring.RouteSequence(key);
    ASSERT_EQ(seq.size(), 4u);
    EXPECT_EQ(seq.front(), ring.Route(key));
    std::set<int> seen(seq.begin(), seq.end());
    EXPECT_EQ(seen.size(), seq.size()) << "duplicate replica in sequence";
    EXPECT_EQ(seen.count(3), 0u) << "dead replica in failover order";
  }
}

TEST(ConsistentHashTest, LosingAReplicaMovesOnlyItsKeyRange) {
  // The heart of consistent hashing -- and of the fleet's cache locality:
  // a crash must not reshuffle the survivors' keys.
  ConsistentHashRing ring(4, 64);
  const std::vector<std::string> keys = MakeKeys(1000);
  std::map<std::string, int> before;
  for (const std::string& key : keys) before[key] = ring.Route(key);

  ring.SetLive(2, false);
  int moved = 0;
  for (const std::string& key : keys) {
    const int now = ring.Route(key);
    if (before[key] == 2) {
      EXPECT_NE(now, 2) << "dead replica still routed";
      ++moved;
    } else {
      EXPECT_EQ(now, before[key])
          << "key not owned by the dead replica was rerouted: " << key;
    }
  }
  EXPECT_GT(moved, 0) << "test vacuous: victim owned nothing";

  // Revival restores the exact original placement -- a restarted replica
  // reclaims its old range, which is what makes its snapshot useful.
  ring.SetLive(2, true);
  for (const std::string& key : keys) {
    EXPECT_EQ(ring.Route(key), before[key]);
  }
}

TEST(ConsistentHashTest, CascadingFailuresAndNoLiveReplica) {
  ConsistentHashRing ring(3, 64);
  const std::vector<std::string> keys = MakeKeys(50);
  ring.SetLive(0, false);
  ring.SetLive(1, false);
  EXPECT_EQ(ring.NumLive(), 1);
  for (const std::string& key : keys) {
    EXPECT_EQ(ring.Route(key), 2);
    EXPECT_EQ(ring.RouteSequence(key), std::vector<int>{2});
    // Home ignores liveness: the key still knows where it belongs.
    EXPECT_GE(ring.HomeReplica(key), 0);
  }
  ring.SetLive(2, false);
  EXPECT_EQ(ring.NumLive(), 0);
  for (const std::string& key : keys) {
    EXPECT_EQ(ring.Route(key), -1);
    EXPECT_TRUE(ring.RouteSequence(key).empty());
  }
}

TEST(ConsistentHashTest, SingleReplicaOwnsEverything) {
  ConsistentHashRing ring(1, 64);
  for (const std::string& key : MakeKeys(20)) {
    EXPECT_EQ(ring.Route(key), 0);
    EXPECT_EQ(ring.HomeReplica(key), 0);
  }
}

}  // namespace
}  // namespace sdp
