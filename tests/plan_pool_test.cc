#include "optimizer/plan_pool.h"

#include <gtest/gtest.h>

#include <set>

namespace sdp {
namespace {

TEST(PlanPoolTest, NewChargesFreeReleases) {
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  PlanNode* a = pool.New();
  PlanNode* b = pool.New();
  EXPECT_EQ(pool.live_nodes(), 2u);
  EXPECT_EQ(gauge.current_bytes(), 2 * sizeof(PlanNode));
  pool.Free(a);
  EXPECT_EQ(pool.live_nodes(), 1u);
  EXPECT_EQ(gauge.current_bytes(), sizeof(PlanNode));
  pool.Free(b);
  EXPECT_EQ(gauge.current_bytes(), 0u);
}

TEST(PlanPoolTest, RecyclesFreedNodes) {
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  PlanNode* a = pool.New();
  pool.Free(a);
  PlanNode* b = pool.New();
  EXPECT_EQ(a, b);  // Same storage reused.
  EXPECT_EQ(pool.live_nodes(), 1u);
}

TEST(PlanPoolTest, FreedNodeIsReinitializedOnReuse) {
  PlanPool pool(nullptr);
  PlanNode* a = pool.New();
  a->cost = 123;
  a->rel = 7;
  pool.Free(a);
  PlanNode* b = pool.New();
  EXPECT_DOUBLE_EQ(b->cost, 0);
  EXPECT_EQ(b->rel, -1);
}

TEST(PlanPoolTest, IgnoresForeignNodes) {
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  // Arena-owned node (pool_id == 0): Free must be a no-op.
  Arena arena;
  PlanNode* foreign = arena.New<PlanNode>();
  pool.Free(foreign);
  EXPECT_EQ(pool.live_nodes(), 0u);

  // Node owned by a different pool: also a no-op.
  PlanPool other(nullptr);
  PlanNode* theirs = other.New();
  pool.Free(theirs);
  EXPECT_EQ(other.live_nodes(), 1u);
}

TEST(PlanPoolTest, DoubleFreeIsSafe) {
  PlanPool pool(nullptr);
  PlanNode* a = pool.New();
  pool.Free(a);
  pool.Free(a);  // pool_id cleared on first free: ignored.
  EXPECT_EQ(pool.live_nodes(), 0u);
  // Only one slot in the free list: two News give distinct nodes.
  PlanNode* b = pool.New();
  PlanNode* c = pool.New();
  EXPECT_NE(b, c);
}

TEST(PlanPoolTest, FreeTopAndSortsReleasesSortChildrenOnly) {
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  PlanNode* scan = pool.New();
  scan->kind = PlanKind::kSeqScan;
  PlanNode* sort = pool.New();
  sort->kind = PlanKind::kSort;
  sort->outer = scan;
  PlanNode* join = pool.New();
  join->kind = PlanKind::kMergeJoin;
  join->outer = sort;
  join->inner = scan;  // Non-sort child: must survive.
  pool.FreeTopAndSorts(join);
  // join and sort freed; scan alive.
  EXPECT_EQ(pool.live_nodes(), 1u);
  EXPECT_EQ(gauge.current_bytes(), sizeof(PlanNode));
}

TEST(PlanPoolTest, DestructorReleasesLiveNodes) {
  MemoryGauge gauge;
  {
    PlanPool pool(&gauge);
    for (int i = 0; i < 100; ++i) pool.New();
    EXPECT_EQ(gauge.current_bytes(), 100 * sizeof(PlanNode));
  }
  EXPECT_EQ(gauge.current_bytes(), 0u);
}

TEST(PlanPoolTest, ManyAllocFreeCyclesStayBounded) {
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  std::vector<PlanNode*> live;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) live.push_back(pool.New());
    for (PlanNode* n : live) pool.Free(n);
    live.clear();
  }
  EXPECT_EQ(pool.live_nodes(), 0u);
  EXPECT_EQ(gauge.current_bytes(), 0u);
  // Peak never exceeded one round's worth.
  EXPECT_LE(gauge.peak_bytes(), 100 * sizeof(PlanNode));
}

}  // namespace
}  // namespace sdp
