#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sdp {
namespace {

TEST(FaultInjectionTest, DisabledByDefaultAndFree) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Disable();
  EXPECT_FALSE(fi.enabled());
  EXPECT_FALSE(fi.Hit("arena.alloc"));
  double v = 99;
  EXPECT_FALSE(fi.Hit("cost.nan", &v));
  EXPECT_EQ(v, 99);  // Payload untouched when disabled.
}

TEST(FaultInjectionTest, NthHitFiresExactlyOnce) {
  FaultInjectionScope scope(1, "cost.nan@3");
  ASSERT_TRUE(scope.ok()) << scope.error();
  FaultInjector& fi = FaultInjector::Global();
  EXPECT_FALSE(fi.Hit("cost.nan"));
  EXPECT_FALSE(fi.Hit("cost.nan"));
  EXPECT_TRUE(fi.Hit("cost.nan"));  // 3rd hit.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fi.Hit("cost.nan"));
  EXPECT_EQ(fi.HitCount("cost.nan"), 13u);
  EXPECT_EQ(fi.FireCount("cost.nan"), 1u);
}

TEST(FaultInjectionTest, PayloadDelivered) {
  FaultInjectionScope scope(1, "pool.stall@1=25.5");
  ASSERT_TRUE(scope.ok()) << scope.error();
  double v = 0;
  EXPECT_TRUE(FaultInjector::Global().Hit("pool.stall", &v));
  EXPECT_DOUBLE_EQ(v, 25.5);
}

TEST(FaultInjectionTest, ProbabilityIsDeterministicPerSeed) {
  auto fire_pattern = [](uint64_t seed) {
    FaultInjectionScope scope(seed, "arena.alloc%0.3");
    EXPECT_TRUE(scope.ok());
    std::vector<bool> fires;
    fires.reserve(200);
    for (int i = 0; i < 200; ++i) {
      fires.push_back(FaultInjector::Global().Hit("arena.alloc"));
    }
    return fires;
  };
  const std::vector<bool> a = fire_pattern(42);
  const std::vector<bool> b = fire_pattern(42);
  EXPECT_EQ(a, b);  // Same seed: identical fire sequence.

  const std::vector<bool> c = fire_pattern(43);
  EXPECT_NE(a, c);  // Different seed: different sequence (w.h.p.).

  // Rough rate check: 200 trials at p=0.3 should fire 20..100 times.
  int fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 100);
}

TEST(FaultInjectionTest, MultipleRulesAndUnknownSitesAccepted) {
  FaultInjectionScope scope(7, "arena.alloc@2,pool.stall@1=5,not.a.site@1");
  ASSERT_TRUE(scope.ok()) << scope.error();
  FaultInjector& fi = FaultInjector::Global();
  EXPECT_FALSE(fi.Hit("arena.alloc"));
  EXPECT_TRUE(fi.Hit("arena.alloc"));
  EXPECT_TRUE(fi.Hit("pool.stall"));
  // Sites with no rule never fire even while enabled.
  EXPECT_FALSE(fi.Hit("cost.nan"));
}

TEST(FaultInjectionTest, MalformedSpecsRejected) {
  for (const char* bad : {"nosigil", "site@", "site@x", "site%", "site%2",
                          "site%-0.1", "site@0", "@3"}) {
    std::string error;
    EXPECT_FALSE(FaultInjector::Global().Configure(1, bad, &error))
        << "spec accepted: " << bad;
    EXPECT_FALSE(error.empty()) << bad;
    EXPECT_FALSE(FaultInjector::Global().enabled()) << bad;
  }
}

TEST(FaultInjectionTest, EmptySpecDisables) {
  std::string error;
  EXPECT_TRUE(FaultInjector::Global().Configure(1, "", &error)) << error;
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

TEST(FaultInjectionTest, ScopeDisablesOnDestruction) {
  {
    FaultInjectionScope scope(1, "arena.alloc@1");
    EXPECT_TRUE(FaultInjector::Global().enabled());
  }
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

TEST(FaultInjectionTest, KnownSitesRegistryNonEmpty) {
  const std::vector<std::string> sites = FaultInjector::KnownSites();
  auto has = [&sites](const char* s) {
    for (const std::string& site : sites) {
      if (site == s) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("arena.alloc"));
  EXPECT_TRUE(has("cost.nan"));
  EXPECT_TRUE(has("budget.clock-jump"));
  EXPECT_TRUE(has("pool.stall"));
  EXPECT_TRUE(has("service.fill"));
}

}  // namespace
}  // namespace sdp
