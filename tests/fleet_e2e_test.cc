// End-to-end fleet tests: real forked replica processes, the real
// router, real loopback sockets.  Each test stands up its own fleet so a
// killed replica in one test cannot leak into another.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/socket_util.h"
#include "fleet/fleet_client.h"
#include "fleet/supervisor.h"
#include "obs/dtrace.h"
#include "obs/flight_recorder.h"
#include "workload/workload.h"

namespace sdp {
namespace {

// Observability port base for tests that need replica HTTP endpoints
// (there is no kernel-assign plumbing for the obs base port).  Spread by
// pid so concurrently running test processes rarely collide, with a
// per-call stride so one process never reuses a base.
int NextObsBasePort() {
  static int calls = 0;
  return 24000 + (::getpid() % 5000) + 16 * calls++;
}

class FleetE2eTest : public ::testing::Test {
 protected:
  void StartFleet(int replicas, bool with_snapshots,
                  int replica_obs_base_port = 0) {
    FleetConfig config;
    config.num_replicas = replicas;
    config.replica_obs_base_port = replica_obs_base_port;
    config.service.num_threads = 2;
    config.health_interval_ms = 50;  // Fast failure detection in tests.
    if (with_snapshots) {
      // Keyed by pid so a rerun never restores a previous run's files.
      config.snapshot_dir = ::testing::TempDir() + "fleet_e2e_" +
                            ::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name() +
                            "_" + std::to_string(::getpid());
      (void)::mkdir(config.snapshot_dir.c_str(), 0755);
    }
    fleet_ = std::make_unique<FleetSupervisor>(config);
    std::string error;
    ASSERT_TRUE(fleet_->Start(&error)) << error;
    ASSERT_TRUE(client_.Connect(fleet_->router_port(), 5000, &error))
        << error;
  }

  void TearDown() override {
    client_.Close();
    if (fleet_ != nullptr) fleet_->Stop();
  }

  std::vector<FleetRequest> MakeWorkload(int instances) const {
    const Catalog catalog = MakeSyntheticCatalog(SchemaConfig{});
    WorkloadSpec spec;
    spec.topology = Topology::kChain;
    spec.num_relations = 6;
    spec.num_instances = instances;
    spec.seed = 13;
    std::vector<FleetRequest> requests;
    uint64_t id = 1;
    for (Query& q : GenerateWorkload(catalog, spec)) {
      FleetRequest req;
      req.request_id = id++;
      req.query = std::move(q);
      requests.push_back(std::move(req));
    }
    return requests;
  }

  FleetResponse MustOptimize(const FleetRequest& req) {
    FleetResponse resp;
    std::string error;
    EXPECT_TRUE(client_.Optimize(req, &resp, &error)) << error;
    EXPECT_TRUE(resp.ok) << resp.error;
    return resp;
  }

  bool WaitReplicaLive(int replica, bool want, double seconds) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<int>(seconds * 1000));
    while (std::chrono::steady_clock::now() < deadline) {
      if (fleet_->router()->ReplicaLive(replica) == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  // Direct replica stats round trip, bypassing the router.
  static bool FetchStats(int port, FleetReplicaStats* out) {
    std::string error;
    const int fd = ConnectLocalhost(port, 2000, &error);
    if (fd < 0) return false;
    SetIoTimeout(fd, 5000);
    Frame frame;
    const bool ok = WriteFrame(fd, FrameType::kStatsRequest, 0, "") &&
                    ReadFrame(fd, &frame) &&
                    frame.type == FrameType::kStatsResponse &&
                    DecodeReplicaStats(frame.payload, out);
    ::close(fd);
    return ok;
  }

  std::unique_ptr<FleetSupervisor> fleet_;
  FleetClient client_;
};

TEST_F(FleetE2eTest, ConsistentRoutingAndByteIdenticalCacheHits) {
  StartFleet(3, /*with_snapshots=*/false);
  const std::vector<FleetRequest> workload = MakeWorkload(6);

  std::map<uint64_t, FleetResponse> first;
  for (const FleetRequest& req : workload) {
    const FleetResponse resp = MustOptimize(req);
    EXPECT_FALSE(resp.cache_hit) << "fresh fleet served a hit";
    // The serving replica is exactly the ring's choice for the key.
    const std::string key = fleet_->router()->RoutingKey(req);
    const std::vector<int> seq =
        fleet_->router()->RouteSequenceForKey(key);
    ASSERT_FALSE(seq.empty());
    EXPECT_EQ(resp.replica_id, seq.front());
    first[req.request_id] = resp;
  }
  for (const FleetRequest& req : workload) {
    const FleetResponse resp = MustOptimize(req);
    EXPECT_TRUE(resp.cache_hit);
    EXPECT_EQ(resp.replica_id, first[req.request_id].replica_id)
        << "same key routed to a different replica";
    EXPECT_EQ(resp.fingerprint, first[req.request_id].fingerprint)
        << "cache hit served a different plan than the original compute";
    EXPECT_EQ(resp.cost_bits, first[req.request_id].cost_bits);
  }
}

TEST_F(FleetE2eTest, CacheFillBroadcastWarmsPeerReplicas) {
  StartFleet(3, /*with_snapshots=*/false);
  const FleetRequest req = MakeWorkload(1).at(0);
  const FleetResponse computed = MustOptimize(req);

  // The broadcast is asynchronous: wait until every peer's cache holds
  // the entry, then ask a peer directly and demand a byte-identical hit.
  for (int i = 0; i < fleet_->num_replicas(); ++i) {
    if (i == computed.replica_id) continue;
    FleetReplicaStats stats;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (FetchStats(fleet_->replica_port(i), &stats) &&
          stats.cache_entries >= 1) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_GE(stats.cache_entries, 1u)
        << "broadcast never reached replica " << i;

    FleetClient direct;
    std::string error;
    ASSERT_TRUE(direct.Connect(fleet_->replica_port(i), 2000, &error))
        << error;
    FleetResponse peer;
    ASSERT_TRUE(direct.Optimize(req, &peer, &error)) << error;
    EXPECT_TRUE(peer.ok) << peer.error;
    EXPECT_EQ(peer.replica_id, i);
    EXPECT_TRUE(peer.cache_hit)
        << "peer recomputed instead of serving the broadcast fill";
    EXPECT_EQ(peer.fingerprint, computed.fingerprint)
        << "broadcast-installed plan differs from the original";
  }
}

TEST_F(FleetE2eTest, CrashFailoverLosesNoRequestsAndNoPlans) {
  StartFleet(3, /*with_snapshots=*/false);
  const std::vector<FleetRequest> workload = MakeWorkload(6);
  std::map<uint64_t, std::string> fingerprints;
  int victim = -1;
  for (const FleetRequest& req : workload) {
    const FleetResponse resp = MustOptimize(req);
    fingerprints[req.request_id] = resp.fingerprint;
    victim = resp.replica_id;  // Any replica that served something.
  }
  ASSERT_GE(victim, 0);

  // Hard crash -- SIGKILL, no drain, no goodbye.  The router must fail
  // the victim's keys over with zero client-visible errors, and the
  // broadcast-warmed survivors must serve the *identical* plans.
  ASSERT_TRUE(fleet_->KillReplica(victim, SIGKILL));
  for (const FleetRequest& req : workload) {
    const FleetResponse resp = MustOptimize(req);
    EXPECT_NE(resp.replica_id, victim) << "dead replica answered";
    EXPECT_EQ(resp.fingerprint, fingerprints[req.request_id])
        << "failover changed the plan for request " << req.request_id;
  }
  EXPECT_EQ(fleet_->router()->stats().failed_after_retry, 0u);
  EXPECT_TRUE(WaitReplicaLive(victim, false, 5.0))
      << "health probe never noticed the crash";
}

TEST_F(FleetE2eTest, GracefulRestartRejoinsWarmFromSnapshot) {
  StartFleet(3, /*with_snapshots=*/true);
  const std::vector<FleetRequest> workload = MakeWorkload(6);
  std::map<uint64_t, FleetResponse> first;
  for (const FleetRequest& req : workload) {
    first[req.request_id] = MustOptimize(req);
  }
  // Victim: whichever replica served the first request, so we know at
  // least one key homes there.
  const int victim = first[workload[0].request_id].replica_id;

  // SIGTERM = graceful drain: the replica persists its cache on the way
  // out, then the restarted process restores it and rejoins live.
  ASSERT_TRUE(fleet_->KillReplica(victim, SIGTERM));
  ASSERT_TRUE(WaitReplicaLive(victim, false, 5.0));
  ASSERT_TRUE(fleet_->RestartReplica(victim));
  ASSERT_TRUE(WaitReplicaLive(victim, true, 10.0))
      << "restarted replica never rejoined";

  // The restarted process must already hold its snapshot entries.
  FleetReplicaStats stats;
  ASSERT_TRUE(FetchStats(fleet_->replica_port(victim), &stats));
  EXPECT_GE(stats.cache_entries, 1u) << "snapshot restore installed nothing";
  EXPECT_EQ(stats.requests_completed, 0u)
      << "expected a fresh process, not the old one";

  // And its first-ever request for an old key is a byte-identical hit.
  for (const FleetRequest& req : workload) {
    const FleetResponse resp = MustOptimize(req);
    EXPECT_TRUE(resp.cache_hit);
    EXPECT_EQ(resp.replica_id, first[req.request_id].replica_id)
        << "restart moved a key off its home replica";
    EXPECT_EQ(resp.fingerprint, first[req.request_id].fingerprint)
        << "snapshot round trip changed a plan";
  }
}

TEST_F(FleetE2eTest, FleetzAndMergedMetricsExposeEveryReplica) {
  StartFleet(2, /*with_snapshots=*/false);
  MustOptimize(MakeWorkload(1).at(0));

  // /fleetz: per-replica health rows.  Stats arrive via the health
  // thread, so poll briefly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::string fleetz;
  while (std::chrono::steady_clock::now() < deadline) {
    HttpRequest req;
    req.method = "GET";
    req.path = "/fleetz";
    const HttpResponse resp = fleet_->router()->HandleHttp(req);
    EXPECT_EQ(resp.status, 200);
    fleetz = resp.body;
    if (fleetz.find("\"stats_valid\": false") == std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_NE(fleetz.find("\"replica\": 0"), std::string::npos) << fleetz;
  EXPECT_NE(fleetz.find("\"replica\": 1"), std::string::npos) << fleetz;
  EXPECT_NE(fleetz.find("\"live\": true"), std::string::npos) << fleetz;
  EXPECT_NE(fleetz.find("requests_routed"), std::string::npos) << fleetz;

  // Merged /metrics: every sample labelled with its replica, both
  // replicas present in one exposition.
  HttpRequest mreq;
  mreq.method = "GET";
  mreq.path = "/metrics";
  const HttpResponse metrics = fleet_->router()->HandleHttp(mreq);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("replica=\"0\""), std::string::npos);
  EXPECT_NE(metrics.body.find("replica=\"1\""), std::string::npos);
  EXPECT_NE(metrics.body.find("sdp_service_requests_completed_total"),
            std::string::npos);

  HttpRequest bad;
  bad.method = "GET";
  bad.path = "/nope";
  EXPECT_EQ(fleet_->router()->HandleHttp(bad).status, 404);
}

// ---------------------------------------------------------------------------
// Distributed tracing: /dtracez cross-process timelines

HttpResponse GetDtracez(FleetRouter* router, const std::string& query) {
  HttpRequest req;
  req.method = "GET";
  req.path = "/dtracez";
  req.query = query;
  return router->HandleHttp(req);
}

// Waits until the router has delivered `want` cache-fill broadcasts; the
// fan-out is asynchronous, and its trace-tagged events must be in the
// recorder before a timeline fetch can be deterministic.
bool WaitBroadcasts(FleetRouter* router, uint64_t want, double seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int>(seconds * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    if (router->stats().broadcasts_sent >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST_F(FleetE2eTest, DtracezTimelineCorrelatesRouterAndReplicaSpans) {
  FlightRecorder::Global().ResetForTesting();
  StartFleet(3, /*with_snapshots=*/false, NextObsBasePort());
  const FleetRequest request = MakeWorkload(1).at(0);
  MustOptimize(request);
  ASSERT_TRUE(WaitBroadcasts(fleet_->router(), 2, 10.0))
      << "cache-fill broadcast never completed";

  const std::vector<RouteTraceEntry> traces =
      fleet_->router()->RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  const RouteTraceEntry entry = traces.front();
  EXPECT_EQ(entry.request_id, request.request_id);
  EXPECT_TRUE(entry.ok);
  ASSERT_GE(entry.replica, 0);
  const std::string hex = TraceIdHex(entry.trace_id);
  // The id is a pure function of the request id and routing key.
  EXPECT_EQ(entry.trace_id,
            MintTraceId(request.request_id,
                        DtraceHash(fleet_->router()->RoutingKey(request))));

  // The index lists the trace; an unknown id is a 404.
  EXPECT_NE(GetDtracez(fleet_->router(), "").body.find(hex),
            std::string::npos);
  EXPECT_EQ(GetDtracez(fleet_->router(), "trace=ffffffffffffffff").status,
            404);

  const HttpResponse timeline =
      GetDtracez(fleet_->router(), "trace=" + hex + "&format=json");
  ASSERT_EQ(timeline.status, 200);
  EXPECT_EQ(timeline.content_type, "application/json");
  const std::string& body = timeline.body;
  EXPECT_NE(body.find("\"trace\":\"" + hex + "\""), std::string::npos);
  EXPECT_NE(body.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(body.find("\"event\":\"route_end\""), std::string::npos);
  EXPECT_NE(body.find("\"event\":\"broadcast_fill\""), std::string::npos);
  EXPECT_NE(body.find("\"delivered\":2"), std::string::npos)
      << "fan-out did not reach both peers: " << body;

  // Walk the event lines: one consistent trace id everywhere, replica
  // spans present, and every replica span names a router attempt span
  // (no orphans).
  std::set<uint64_t> attempt_spans;
  std::set<uint64_t> replica_spans;
  int router_events = 0;
  int replica_events = 0;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"lane\":", 0) != 0) continue;  // Not an event line.
    const size_t trace_pos = line.find("\"trace\":\"");
    ASSERT_NE(trace_pos, std::string::npos) << line;
    EXPECT_EQ(line.substr(trace_pos + 9, 16), hex)
        << "foreign trace id in timeline: " << line;
    const size_t span_pos = line.find("\"span\":");
    ASSERT_NE(span_pos, std::string::npos) << line;
    const uint64_t span = std::stoull(line.substr(span_pos + 7));
    const int lane = std::stoi(line.substr(8));
    if (lane < 0) {
      ++router_events;
      if (line.find("\"event\":\"route_attempt\"") != std::string::npos) {
        attempt_spans.insert(span);
      }
    } else {
      EXPECT_EQ(lane, entry.replica);
      ++replica_events;
      replica_spans.insert(span);
    }
  }
  EXPECT_GE(router_events, 3) << body;  // begin, attempt, end at least.
  EXPECT_GT(replica_events, 0) << "no replica spans in the timeline";
  ASSERT_FALSE(attempt_spans.empty());
  for (const uint64_t span : replica_spans) {
    EXPECT_TRUE(attempt_spans.count(span) != 0)
        << "orphan replica span " << span << " matches no router attempt";
  }

  // Structural timelines must not leak wall-clock timing.
  EXPECT_EQ(body.find("ts_ns"), std::string::npos);
  EXPECT_EQ(body.find("\"seq\":"), std::string::npos);

  // Human rendering shares the merged order with lane prefixes.
  const HttpResponse human = GetDtracez(fleet_->router(), "trace=" + hex);
  ASSERT_EQ(human.status, 200);
  EXPECT_NE(human.body.find("router   |"), std::string::npos);
  EXPECT_NE(human.body.find("replica" + std::to_string(entry.replica) +
                            " |"),
            std::string::npos);

  // Chrome export: per-process pid lanes with wall-clock timestamps.
  const HttpResponse chrome =
      GetDtracez(fleet_->router(), "trace=" + hex + "&format=chrome");
  ASSERT_EQ(chrome.status, 200);
  EXPECT_NE(chrome.body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.body.find("{\"name\":\"router\"}"), std::string::npos);
  EXPECT_NE(chrome.body.find("\"name\":\"replica " +
                             std::to_string(entry.replica) + "\""),
            std::string::npos);
  EXPECT_NE(chrome.body.find("\"pid\":" +
                             std::to_string(1 + entry.replica)),
            std::string::npos);
  EXPECT_NE(chrome.body.find("\"ts\":"), std::string::npos);
}

TEST_F(FleetE2eTest, DtracezTimelineByteIdenticalAcrossOptThreads) {
  // The same seeded request must render the same /dtracez JSON bytes
  // whether the replicas enumerate serially or with intra-query
  // parallelism: trace ids are content-minted and the structural render
  // omits every thread-dependent field.
  const FleetRequest request = MakeWorkload(1).at(0);
  const auto run_fleet = [&](int opt_threads) -> std::string {
    // The router runs in-process: clear the shared recorder so the
    // previous fleet's identically-minted trace leaves no events behind.
    FlightRecorder::Global().ResetForTesting();
    FleetConfig config;
    config.num_replicas = 3;
    config.replica_obs_base_port = NextObsBasePort();
    config.service.num_threads = 2;
    config.service.max_opt_threads = opt_threads;
    config.health_interval_ms = 50;
    FleetSupervisor fleet(config);
    std::string error;
    EXPECT_TRUE(fleet.Start(&error)) << error;
    FleetClient client;
    EXPECT_TRUE(client.Connect(fleet.router_port(), 5000, &error)) << error;
    FleetResponse resp;
    EXPECT_TRUE(client.Optimize(request, &resp, &error)) << error;
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_TRUE(WaitBroadcasts(fleet.router(), 2, 10.0));
    const std::vector<RouteTraceEntry> traces =
        fleet.router()->RecentTraces();
    EXPECT_EQ(traces.size(), 1u);
    const std::string body =
        GetDtracez(fleet.router(),
                   "trace=" + TraceIdHex(traces.front().trace_id) +
                       "&format=json")
            .body;
    client.Close();
    fleet.Stop();
    return body;
  };

  const std::string serial = run_fleet(1);
  const std::string parallel = run_fleet(4);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("\"event\":\"route_end\""), std::string::npos);
  EXPECT_NE(serial.find("\"lane\":"), std::string::npos);
  EXPECT_EQ(serial, parallel)
      << "timeline bytes diverged between opt_threads=1 and 4";
}

}  // namespace
}  // namespace sdp
