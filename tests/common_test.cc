#include <gtest/gtest.h>

#include <set>

#include "common/arena.h"
#include "common/math_util.h"
#include "common/rel_set.h"
#include "common/rng.h"

namespace sdp {
namespace {

TEST(RelSetTest, BasicOperations) {
  RelSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  s = s.With(3).With(7).With(0);
  EXPECT_EQ(s.Count(), 3);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Lowest(), 0);
  EXPECT_EQ(s.Without(0).Lowest(), 3);
  EXPECT_EQ(s.ToString(), "{0,3,7}");
}

TEST(RelSetTest, SetAlgebra) {
  const RelSet a = RelSet::Single(1).With(2).With(3);
  const RelSet b = RelSet::Single(3).With(4);
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_EQ(a.Union(b).Count(), 4);
  EXPECT_EQ(a.Intersect(b), RelSet::Single(3));
  EXPECT_EQ(a.Subtract(b).Count(), 2);
  EXPECT_TRUE(RelSet::Single(2).IsSubsetOf(a));
  EXPECT_TRUE(RelSet::Single(2).IsProperSubsetOf(a));
  EXPECT_FALSE(a.IsProperSubsetOf(a));
  EXPECT_TRUE(a.ContainsAll(RelSet::Single(1).With(3)));
}

TEST(RelSetTest, FirstN) {
  EXPECT_EQ(RelSet::FirstN(0).Count(), 0);
  EXPECT_EQ(RelSet::FirstN(5).Count(), 5);
  EXPECT_EQ(RelSet::FirstN(64).Count(), 64);
}

TEST(RelSetTest, ForEachVisitsInOrder) {
  const RelSet s = RelSet::Single(9).With(2).With(30);
  std::vector<int> seen;
  s.ForEach([&](int r) { seen.push_back(r); });
  EXPECT_EQ(seen, (std::vector<int>{2, 9, 30}));
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, BoundedInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> s = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(s.size(), 7u);
    std::set<int> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 7u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, ForkIndependence) {
  Rng parent(7);
  Rng child = parent.Fork();
  // Child stream differs from parent's continued stream.
  EXPECT_NE(child.Next64(), parent.Next64());
}

TEST(ArenaTest, AllocatesAndCharges) {
  MemoryGauge gauge;
  {
    Arena arena(&gauge);
    for (int i = 0; i < 1000; ++i) {
      int* p = arena.New<int>(i);
      EXPECT_EQ(*p, i);
    }
    EXPECT_GE(arena.allocated_bytes(), 4000u);
    EXPECT_EQ(gauge.current_bytes(), arena.allocated_bytes());
  }
  EXPECT_EQ(gauge.current_bytes(), 0u);
  EXPECT_GE(gauge.peak_bytes(), 4000u);
}

TEST(ArenaTest, AlignmentRespected) {
  Arena arena;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(3, 1);
    void* q = arena.Allocate(8, 8);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % 8, 0u);
  }
}

TEST(MemoryGaugeTest, PeakTracksHighWater) {
  MemoryGauge g;
  g.Charge(100);
  g.Charge(50);
  g.Release(120);
  g.Charge(10);
  EXPECT_EQ(g.current_bytes(), 40u);
  EXPECT_EQ(g.peak_bytes(), 150u);
}

TEST(MathTest, BinomialCoefficient) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(24, 14), 1961256);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 0), 1);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 5), 0);
}

TEST(MathTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({1, 1, 1}), 1);
  EXPECT_NEAR(GeometricMean({2, 8}), 4, 1e-12);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0);
}

TEST(MathTest, ForEachCombination) {
  int count = 0;
  const uint64_t visited = ForEachCombination(5, 3, [&](const std::vector<int>& c) {
    EXPECT_EQ(c.size(), 3u);
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 10);
  EXPECT_EQ(visited, 10u);
}

TEST(MathTest, ForEachCombinationEarlyStop) {
  const uint64_t visited = ForEachCombination(
      6, 2, [&](const std::vector<int>&) { return false; });
  EXPECT_EQ(visited, 1u);
}

}  // namespace
}  // namespace sdp
