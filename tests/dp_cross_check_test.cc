// Cross-validation of the size-driven enumerator (DPsize) against the
// independent subset-driven enumeration (DPsub): both are exhaustive, so
// they must find the identical optimum on every query.  Any divergence
// means one of them misses join pairs.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "optimizer/dp.h"
#include "query/topology.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

class DpCrossCheckTest : public ::testing::Test {
 protected:
  DpCrossCheckTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}
  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(DpCrossCheckTest, IdenticalOptimaAcrossTopologies) {
  for (Topology t : {Topology::kChain, Topology::kStar, Topology::kStarChain,
                     Topology::kCycle, Topology::kClique}) {
    const int n = t == Topology::kClique ? 7 : 9;
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 4;
    spec.seed = 55;
    for (const Query& q : GenerateWorkload(catalog_, spec)) {
      CostModel cost(catalog_, stats_, q.graph);
      const OptimizeResult size_driven = OptimizeDP(q, cost);
      const OptimizeResult subset_driven = OptimizeDPSub(q, cost);
      ASSERT_TRUE(size_driven.feasible && subset_driven.feasible);
      EXPECT_NEAR(size_driven.cost, subset_driven.cost,
                  size_driven.cost * 1e-12)
          << TopologyName(t);
      // Same number of distinct JCRs entered the memo.
      EXPECT_EQ(size_driven.counters.jcrs_created,
                subset_driven.counters.jcrs_created)
          << TopologyName(t);
    }
  }
}

TEST_F(DpCrossCheckTest, IdenticalOptimaOnOrderedQueries) {
  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 9;
  spec.num_instances = 5;
  spec.ordered = true;
  spec.seed = 56;
  for (const Query& q : GenerateWorkload(catalog_, spec)) {
    CostModel cost(catalog_, stats_, q.graph);
    const OptimizeResult a = OptimizeDP(q, cost);
    const OptimizeResult b = OptimizeDPSub(q, cost);
    ASSERT_TRUE(a.feasible && b.feasible);
    EXPECT_NEAR(a.cost, b.cost, a.cost * 1e-12);
  }
}

TEST_F(DpCrossCheckTest, IdenticalOptimaWithFilters) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 8;
  spec.num_instances = 3;
  spec.seed = 57;
  for (Query q : GenerateWorkload(catalog_, spec)) {
    q.filters.push_back(FilterPredicate{ColumnRef{1, 0}, CompareOp::kLt, 900});
    q.filters.push_back(FilterPredicate{ColumnRef{0, 2}, CompareOp::kGe, 10});
    CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
    const OptimizeResult a = OptimizeDP(q, cost);
    const OptimizeResult b = OptimizeDPSub(q, cost);
    ASSERT_TRUE(a.feasible && b.feasible);
    EXPECT_NEAR(a.cost, b.cost, a.cost * 1e-12);
  }
}

TEST_F(DpCrossCheckTest, DPSubRespectsBudget) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 12;
  spec.num_instances = 1;
  const Query q = GenerateWorkload(catalog_, spec).front();
  CostModel cost(catalog_, stats_, q.graph);
  OptimizerOptions tiny;
  tiny.memory_budget_bytes = 64 * 1024;
  const OptimizeResult r = OptimizeDPSub(q, cost, tiny);
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace sdp
