// Sampling-profiler tests: signal-safety under concurrent optimization
// (the TSan job runs Prof* with 8 threads against a 997 Hz sampler),
// phase exactness (every sample carries exactly one phase tag), the
// allocation-attribution determinism contract (--opt-threads 1 vs N must
// produce bit-identical per-phase byte totals), folded-stack rendering
// and merging, the /profilez endpoint, and the request-peak-bytes gauge
// the service derives from the same byte accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "harness/experiment.h"
#include "obs/introspection.h"
#include "obs/prof/prof.h"
#include "obs/prof/prof_export.h"
#include "obs/prof/profiler.h"
#include "optimizer/dp.h"
#include "query/topology.h"
#include "service/optimizer_service.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

class ProfTest : public ::testing::Test {
 protected:
  ProfTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  void SetUp() override {
    // Tests in this binary share the process-global profiler; start each
    // one quiescent and attributing nothing.
    SamplingProfiler::Instance().Stop();
    SamplingProfiler::Instance().Reset();
    ProfSetAllocCountersEnabled(false);
    ProfAllocReset();
  }
  void TearDown() override {
    SamplingProfiler::Instance().Stop();
    SamplingProfiler::Instance().Reset();
    ProfSetAllocCountersEnabled(false);
    ProfAllocReset();
  }

  Query MakeQuery(Topology t, int n, uint64_t seed) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec).front();
  }

  // One full optimize of a mid-size query (enough CPU to be sampled).
  void BurnOnce(PlanEnumeratorKind kind, int opt_threads = 1) {
    const Query q = MakeQuery(Topology::kChain, 20, 7);
    CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
    OptimizerOptions opt;
    opt.enumerator = kind;
    opt.opt_threads = opt_threads;
    const OptimizeResult res = OptimizeDP(q, cost, opt);
    ASSERT_TRUE(res.feasible);
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

// ---------------------------------------------------------------------------
// Phase tagging basics

TEST_F(ProfTest, PhaseTagsNestAndRestore) {
  EXPECT_EQ(CurrentProfPhase(), ProfPhaseKind::kNone);
  {
    ProfPhase outer(ProfPhaseKind::kEnumerate);
    EXPECT_EQ(CurrentProfPhase(), ProfPhaseKind::kEnumerate);
    {
      ProfPhase inner(ProfPhaseKind::kCost);
      EXPECT_EQ(CurrentProfPhase(), ProfPhaseKind::kCost);
    }
    EXPECT_EQ(CurrentProfPhase(), ProfPhaseKind::kEnumerate);
  }
  EXPECT_EQ(CurrentProfPhase(), ProfPhaseKind::kNone);
}

TEST_F(ProfTest, PhaseNamesAreStable) {
  EXPECT_STREQ(ProfPhaseName(ProfPhaseKind::kNone), "none");
  EXPECT_STREQ(ProfPhaseName(ProfPhaseKind::kEnumerate), "enumerate");
  EXPECT_STREQ(ProfPhaseName(ProfPhaseKind::kCost), "cost");
  EXPECT_STREQ(ProfPhaseName(ProfPhaseKind::kPrune), "prune");
  EXPECT_STREQ(ProfPhaseName(ProfPhaseKind::kMerge), "merge");
  EXPECT_STREQ(ProfPhaseName(ProfPhaseKind::kCache), "cache");
  EXPECT_STREQ(ProfPhaseName(ProfPhaseKind::kServe), "serve");
}

// ---------------------------------------------------------------------------
// Allocation attribution

TEST_F(ProfTest, AllocCountersDisabledRecordNothing) {
  ProfRecordAlloc(ProfAllocSource::kArena, 4096);
  const ProfAllocCounters snap = ProfAllocSnapshot();
  EXPECT_EQ(snap.TotalBytes(), 0u);
}

TEST_F(ProfTest, AllocCountersKeyByActivePhaseAndSource) {
  ProfSetAllocCountersEnabled(true);
  {
    ProfPhase phase(ProfPhaseKind::kCost);
    ProfRecordAlloc(ProfAllocSource::kArena, 100);
    ProfRecordAlloc(ProfAllocSource::kMemo, 50);
  }
  ProfRecordAlloc(ProfAllocSource::kArena, 7);  // Lands in "none".
  const ProfAllocCounters snap = ProfAllocSnapshot();
  EXPECT_EQ(snap.PhaseBytes(ProfPhaseKind::kCost), 150u);
  EXPECT_EQ(snap.PhaseBytes(ProfPhaseKind::kNone), 7u);
  EXPECT_EQ(snap.SourceBytes(ProfAllocSource::kArena), 107u);
  EXPECT_EQ(snap.SourceBytes(ProfAllocSource::kMemo), 50u);
  EXPECT_EQ(snap.TotalBytes(), 157u);
}

TEST_F(ProfTest, OptimizeAttributesAllocationsToNamedPhases) {
  ProfSetAllocCountersEnabled(true);
  BurnOnce(PlanEnumeratorKind::kDPccp);
  const ProfAllocCounters snap = ProfAllocSnapshot();
  // Memo entries and plan slots are created while costing; the intern
  // table only fills during enumeration (task build).
  EXPECT_GT(snap.PhaseBytes(ProfPhaseKind::kCost), 0u);
  EXPECT_GT(snap.SourceBytes(ProfAllocSource::kMemo), 0u);
  EXPECT_GT(snap.SourceBytes(ProfAllocSource::kIntern), 0u);
  // Nothing outside a tagged region allocates on gauge-attached paths
  // during the DP run itself (driver setup runs before counters matter,
  // but it is untagged, so allow "none" without requiring it).
  EXPECT_GT(snap.TotalBytes(), snap.PhaseBytes(ProfPhaseKind::kNone));
}

// The determinism contract: per-phase x per-source allocation totals are
// bit-identical at --opt-threads 1 vs 4.  Workers run gauge-free scratch
// (invisible), and the deterministic merge replays candidate application
// on the owner thread under the same kCost extents the serial loop uses.
TEST_F(ProfTest, AllocAttributionIdenticalSerialVsParallel) {
  for (const PlanEnumeratorKind kind :
       {PlanEnumeratorKind::kDPsize, PlanEnumeratorKind::kDPccp}) {
    ProfAllocReset();
    ProfSetAllocCountersEnabled(true);
    BurnOnce(kind, /*opt_threads=*/1);
    const ProfAllocCounters serial = ProfAllocSnapshot();
    ProfAllocReset();
    BurnOnce(kind, /*opt_threads=*/4);
    const ProfAllocCounters parallel = ProfAllocSnapshot();
    ProfSetAllocCountersEnabled(false);
    ASSERT_GT(serial.TotalBytes(), 0u);
    EXPECT_EQ(0, std::memcmp(serial.bytes, parallel.bytes,
                             sizeof(serial.bytes)))
        << EnumeratorName(kind) << ": per-phase byte totals diverged";
    EXPECT_EQ(0, std::memcmp(serial.count, parallel.count,
                             sizeof(serial.count)))
        << EnumeratorName(kind) << ": per-phase alloc counts diverged";
  }
}

// ---------------------------------------------------------------------------
// Sampling

// Signal safety: 8 threads optimizing under a 997 Hz sampler.  The TSan
// CI job runs this with thread sanitization (the handler records
// phase-only samples there); the plain job additionally exercises frame
// capture.  The assertion is survival plus attributed samples.
TEST_F(ProfTest, SamplerSurvivesEightOptimizingThreads) {
  std::string error;
  ASSERT_TRUE(SamplingProfiler::Instance().Start(997, &error)) << error;
  constexpr int kThreads = 8;
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const Query q = MakeQuery(Topology::kChain, 18, 100 + t);
      CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
      OptimizerOptions opt;
      opt.enumerator = t % 2 == 0 ? PlanEnumeratorKind::kDPsize
                                  : PlanEnumeratorKind::kDPccp;
      for (int rep = 0; rep < 3; ++rep) {
        if (!OptimizeDP(q, cost, opt).feasible) failed.store(true);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  SamplingProfiler::Instance().Stop();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(SamplingProfiler::Instance().samples_recorded(), 0u);

  const std::vector<SamplingProfiler::Sample> samples =
      SamplingProfiler::Instance().Snapshot();
  ASSERT_FALSE(samples.empty());
  for (const SamplingProfiler::Sample& s : samples) {
    EXPECT_LT(static_cast<int>(s.phase), kProfPhaseCount);
    EXPECT_GE(s.depth, 0);
    EXPECT_LE(s.depth, SamplingProfiler::kMaxFrames);
  }
}

// Phase exactness: every snapshot sample carries exactly one phase, so
// the per-phase counts sum to the total, and a CPU-bound optimize loop
// attributes the overwhelming majority to named (non-"none") phases.
TEST_F(ProfTest, PhaseCountsSumToTotalAndMostlyNamed) {
  std::string error;
  ASSERT_TRUE(SamplingProfiler::Instance().Start(997, &error)) << error;
  // Keep optimizing until the sampler has a statistically useful pile.
  for (int rep = 0; rep < 200; ++rep) {
    BurnOnce(PlanEnumeratorKind::kDPccp);
    if (SamplingProfiler::Instance().samples_recorded() >= 100) break;
  }
  SamplingProfiler::Instance().Stop();
  const std::vector<SamplingProfiler::Sample> samples =
      SamplingProfiler::Instance().Snapshot();
  ASSERT_GE(samples.size(), 20u);

  const std::map<std::string, uint64_t> counts = ProfPhaseCounts(samples);
  uint64_t total = 0;
  for (const auto& kv : counts) total += kv.second;
  EXPECT_EQ(total, samples.size());

  uint64_t named = 0;
  for (const auto& kv : counts) {
    if (kv.first != "none") named += kv.second;
  }
  // >= 90% of samples land inside a tagged phase (the acceptance bar);
  // the remainder is driver glue between levels.
  EXPECT_GE(named * 10, samples.size() * 9)
      << "named " << named << " of " << samples.size();
}

TEST_F(ProfTest, StartRejectsBadRatesAndDoubleStart) {
  std::string error;
  EXPECT_FALSE(SamplingProfiler::Instance().Start(0, &error));
  EXPECT_FALSE(SamplingProfiler::Instance().Start(100000, &error));
  ASSERT_TRUE(SamplingProfiler::Instance().Start(97, &error)) << error;
  EXPECT_FALSE(SamplingProfiler::Instance().Start(97, &error));
  SamplingProfiler::Instance().Stop();
}

// ---------------------------------------------------------------------------
// Rendering

TEST_F(ProfTest, FoldedRenderingIsLintCleanAndMergeable) {
  std::string error;
  ASSERT_TRUE(SamplingProfiler::Instance().Start(997, &error)) << error;
  for (int rep = 0; rep < 200; ++rep) {
    BurnOnce(PlanEnumeratorKind::kDPccp);
    if (SamplingProfiler::Instance().samples_recorded() >= 50) break;
  }
  SamplingProfiler::Instance().Stop();
  const std::vector<SamplingProfiler::Sample> samples =
      SamplingProfiler::Instance().Snapshot();
  ASSERT_FALSE(samples.empty());

  const std::string folded = RenderFolded(samples);
  ASSERT_FALSE(folded.empty());
  std::istringstream in(folded);
  std::string line;
  uint64_t folded_total = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    // Lint: "phase=<name>;frame;... <count>" -- a phase root, exactly one
    // trailing space-separated positive count, no stray whitespace.
    EXPECT_EQ(line.rfind("phase=", 0), 0u) << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find(' '), space) << "embedded space: " << line;
    const uint64_t count = strtoull(line.c_str() + space + 1, nullptr, 10);
    EXPECT_GT(count, 0u) << line;
    folded_total += count;
  }
  EXPECT_EQ(folded_total, samples.size());

  // Merging a profile with itself doubles every count and changes no keys.
  const std::string merged = MergeFoldedProfiles({folded, folded});
  std::istringstream min(merged);
  uint64_t merged_total = 0;
  while (std::getline(min, line)) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    merged_total += strtoull(line.c_str() + space + 1, nullptr, 10);
  }
  EXPECT_EQ(merged_total, 2 * folded_total);
}

TEST_F(ProfTest, MergeFoldedSumsByKeyAndSorts) {
  const std::string merged = MergeFoldedProfiles(
      {"phase=cost;a;b 3\nphase=enumerate;x 1\n",
       "phase=cost;a;b 4\nphase=serve;y 2\n"});
  EXPECT_EQ(merged,
            "phase=cost;a;b 7\n"
            "phase=enumerate;x 1\n"
            "phase=serve;y 2\n");
}

TEST_F(ProfTest, JsonProfileCarriesPhasesStacksAndAllocTable) {
  ProfSetAllocCountersEnabled(true);
  {
    ProfPhase phase(ProfPhaseKind::kCost);
    ProfRecordAlloc(ProfAllocSource::kMemo, 64);
  }
  std::vector<SamplingProfiler::Sample> samples(2);
  samples[0].phase = ProfPhaseKind::kCost;
  samples[1].phase = ProfPhaseKind::kEnumerate;
  const std::string json = RenderProfileJson(samples, ProfAllocSnapshot(),
                                             /*hz=*/97,
                                             /*samples_recorded=*/2,
                                             /*samples_missed=*/0);
  EXPECT_NE(json.find("\"hz\": 97"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cost\""), std::string::npos);
  EXPECT_NE(json.find("\"enumerate\""), std::string::npos);
  EXPECT_NE(json.find("\"alloc\""), std::string::npos);
  EXPECT_NE(json.find("\"memo\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// /profilez endpoint + request peak gauge

class ProfServiceTest : public ProfTest {
 protected:
  ProfServiceTest() {
    ServiceConfig config;
    config.num_threads = 2;
    service_ = std::make_unique<OptimizerService>(catalog_, stats_, config);
  }

  std::unique_ptr<OptimizerService> service_;
};

TEST_F(ProfServiceTest, ProfilezEndpointRoutesAndRendersFolded) {
  IntrospectionServer server(service_.get());

  // Index advertises the endpoint.
  const HttpResponse index = server.Handle(HttpRequest{"GET", "/", ""});
  EXPECT_NE(index.body.find("/profilez"), std::string::npos);

  // Run traffic in the background so the one-shot capture sees CPU.
  std::atomic<bool> stop{false};
  std::thread burner([&] {
    const Query q = MakeQuery(Topology::kChain, 16, 3);
    CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
    OptimizerOptions opt;
    opt.enumerator = PlanEnumeratorKind::kDPccp;
    while (!stop.load()) OptimizeDP(q, cost, opt);
  });
  const HttpResponse folded =
      server.Handle(HttpRequest{"GET", "/profilez", "seconds=0.3"});
  const HttpResponse json =
      server.Handle(HttpRequest{"GET", "/profilez", "seconds=0.2&format=json"});
  stop.store(true);
  burner.join();

  EXPECT_EQ(folded.status, 200);
  ASSERT_FALSE(folded.body.empty());
  // Folded lint: every line is "phase=...<space><count>".
  std::istringstream in(folded.body);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("phase=", 0), 0u) << line;
    EXPECT_NE(line.rfind(' '), std::string::npos) << line;
  }
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.body.front(), '{');
  EXPECT_NE(json.body.find("\"phases\""), std::string::npos);

  // Statusz exposes the profiler section (quiescent again by now).
  const HttpResponse statusz = server.Handle(HttpRequest{"GET", "/statusz", ""});
  EXPECT_NE(statusz.body.find("[profiler]"), std::string::npos);
  EXPECT_NE(statusz.body.find("request_peak_bytes"), std::string::npos);
}

TEST_F(ProfServiceTest, RequestPeakBytesGaugeTracksLargestRequest) {
  EXPECT_EQ(service_->metrics().request_peak_bytes.load(), 0u);
  ServiceRequest small;
  small.query = MakeQuery(Topology::kChain, 6, 1);
  service_->OptimizeSync(std::move(small));
  const uint64_t after_small = service_->metrics().request_peak_bytes.load();
  EXPECT_GT(after_small, 0u);

  ServiceRequest big;
  big.query = MakeQuery(Topology::kStarChain, 15, 2);
  service_->OptimizeSync(std::move(big));
  const uint64_t after_big = service_->metrics().request_peak_bytes.load();
  EXPECT_GE(after_big, after_small);

  // The gauge is a CAS-max: replaying the small query cannot lower it.
  ServiceRequest small_again;
  small_again.query = MakeQuery(Topology::kChain, 6, 1);
  service_->OptimizeSync(std::move(small_again));
  EXPECT_EQ(service_->metrics().request_peak_bytes.load(), after_big);

  // Exposed on both text surfaces.
  EXPECT_NE(service_->metrics().Dump().find("request_peak_bytes"),
            std::string::npos);
  EXPECT_NE(service_->metrics().PrometheusText().find(
                "sdp_request_peak_bytes"),
            std::string::npos);
}

}  // namespace
}  // namespace sdp
