// Chaos suite: deterministic fault injection and cancellation sweeps.
//
// These tests drive the resource-governance stack through the failure
// paths that never fire on a healthy run: injected allocation failures,
// NaN costs, stalled workers, clock jumps, and cancellation at every
// checkpoint.  The invariant under all of them is the same -- every
// request ends in either a valid plan or a typed OptStatus, never a
// crash, hang, or silently wrong answer.
//
// SDP_CHAOS_SEEDS (env) scales the seed sweep; the CI chaos job raises it
// well above the local default.

#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/budget.h"
#include "common/fault_injection.h"
#include "cost/cost_model.h"
#include "optimizer/fallback.h"
#include "plan/plan_node.h"
#include "query/topology.h"
#include "service/optimizer_service.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

int ChaosSeeds(int default_seeds) {
  const char* env = std::getenv("SDP_CHAOS_SEEDS");
  if (env == nullptr) return default_seeds;
  const int n = std::atoi(env);
  return n > 0 ? n : default_seeds;
}

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}

  Query MakeQuery(Topology t, int n, uint64_t seed) {
    WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = seed;
    return GenerateWorkload(catalog_, spec).front();
  }

  Catalog catalog_;
  StatsCatalog stats_;
};

// Outcome fingerprint for determinism checks.
struct RunOutcome {
  bool feasible = false;
  OptStatusCode code = OptStatusCode::kOk;
  std::string rung;
  double cost = 0;
  uint64_t plans_costed = 0;

  bool operator==(const RunOutcome& o) const {
    return feasible == o.feasible && code == o.code && rung == o.rung &&
           cost == o.cost && plans_costed == o.plans_costed;
  }
};

// Satellite: cancellation determinism.  Cancel a seeded query at every
// checkpoint ordinal (log-spaced sweep past the total) and require, at
// each N: a valid plan or a typed kCancelled -- and bit-identical
// outcomes when the same N runs twice.
TEST_F(ChaosTest, CancellationSweepIsDeterministicAndTyped) {
  const Query q = MakeQuery(Topology::kStarChain, 9, 17);
  CostModel cost(catalog_, stats_, q.graph);

  FallbackConfig config;
  config.start_rung = FallbackRung::kSDP;
  config.max_rung = FallbackRung::kGreedy;

  auto run = [&](uint64_t cancel_at) {
    ResourceBudget::Limits limits;
    limits.cancel_at_checkpoint = cancel_at;
    limits.check_interval = 1;
    ResourceBudget budget(limits);
    OptimizerOptions options;
    options.budget = &budget;
    const OptimizeResult res =
        OptimizeWithFallback(q, cost, config, options);
    if (res.feasible) {
      EXPECT_TRUE(res.status.ok()) << "N=" << cancel_at;
      EXPECT_EQ(ValidatePlanTree(res.plan), "") << "N=" << cancel_at;
    } else {
      EXPECT_EQ(res.status.code, OptStatusCode::kCancelled)
          << "N=" << cancel_at << ": " << res.status.ToString();
    }
    RunOutcome out;
    out.feasible = res.feasible;
    out.code = res.status.code;
    out.rung = res.rung;
    out.cost = res.feasible ? res.cost : 0;
    out.plans_costed = res.counters.plans_costed;
    return out;
  };

  // Total checkpoints of an uncancelled governed run bounds the sweep.
  ResourceBudget probe{ResourceBudget::Limits{}};
  OptimizerOptions options;
  options.budget = &probe;
  const OptimizeResult full = OptimizeWithFallback(q, cost, config, options);
  ASSERT_TRUE(full.feasible);
  const uint64_t total = probe.checkpoints();
  ASSERT_GT(total, 100u);

  bool saw_cancelled = false;
  for (uint64_t n = 1; n <= total + 1; n = n + 1 + n / 2) {
    const RunOutcome first = run(n);
    const RunOutcome second = run(n);
    EXPECT_TRUE(first == second) << "nondeterministic outcome at N=" << n;
    saw_cancelled |= !first.feasible;
  }
  // Both regimes: early cancels fail typed; a cancel point past the last
  // checkpoint leaves the run unharmed.
  EXPECT_TRUE(saw_cancelled);
  EXPECT_TRUE(run(total + 1).feasible);
}

// A forward clock jump (injected at the budget's slow check) trips the
// deadline early instead of being absorbed silently.
TEST_F(ChaosTest, ClockJumpTripsDeadline) {
  const Query q = MakeQuery(Topology::kStarChain, 10, 21);
  CostModel cost(catalog_, stats_, q.graph);

  FaultInjectionScope scope(5, "budget.clock-jump@2=3600");
  ASSERT_TRUE(scope.ok()) << scope.error();

  ResourceBudget::Limits limits;
  limits.deadline_seconds = 30;  // Generous -- only the jump can trip it.
  limits.check_interval = 64;
  ResourceBudget budget(limits);
  OptimizerOptions options;
  options.budget = &budget;

  FallbackConfig config;
  config.start_rung = FallbackRung::kDP;
  const OptimizeResult res = OptimizeWithFallback(q, cost, config, options);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.status.code, OptStatusCode::kDeadlineExceeded);
}

// Satellite: fault storm across seeds.  Probabilistic allocation failures
// and NaN costs against a governed multi-threaded service: every request
// must still resolve to a valid plan or a typed error.
TEST_F(ChaosTest, ServiceSurvivesFaultStormAcrossSeeds) {
  const int seeds = ChaosSeeds(6);
  for (int seed = 1; seed <= seeds; ++seed) {
    FaultInjectionScope scope(
        static_cast<uint64_t>(seed),
        "arena.alloc%0.03,cost.nan%0.03,service.fill%0.2,pool.stall%0.05=5");
    ASSERT_TRUE(scope.ok()) << scope.error();

    ServiceConfig config;
    config.num_threads = 4;
    OptimizerService service(catalog_, stats_, config);

    std::vector<std::future<ServiceResult>> futures;
    for (int i = 0; i < 12; ++i) {
      ServiceRequest request;
      request.query = MakeQuery(i % 2 == 0 ? Topology::kStarChain
                                           : Topology::kChain,
                                7 + i % 3, 100 + i % 4);
      request.fallback_enabled = true;
      request.budget.max_plans_costed = 200000;
      futures.push_back(service.Submit(std::move(request)));
    }
    for (auto& f : futures) {
      ServiceResult r = f.get();  // Completion itself is the first assert.
      if (!r.ok()) continue;      // Load shed: typed rejection.
      if (r.result.feasible) {
        EXPECT_EQ(ValidatePlanTree(r.result.plan), "") << "seed " << seed;
      } else {
        EXPECT_FALSE(r.result.status.ok()) << "seed " << seed;
      }
    }
  }
}

// Satellite: stress with random budget trips.  Deadlines, plans caps and
// mid-flight cancellations race 8 worker threads; the service must fulfil
// every future with a plan or a typed status, and its books must balance.
TEST_F(ChaosTest, StressedServiceHonorsBudgetsUnderConcurrency) {
  ServiceConfig config;
  config.num_threads = 8;
  OptimizerService service(catalog_, stats_, config);

  CancelToken cancel_now;
  cancel_now.Cancel();  // Already cancelled: workers must notice promptly.

  struct Submitted {
    std::future<ServiceResult> future;
    bool cancelled;
  };
  std::vector<Submitted> submitted;
  const int kRequests = 48;
  for (int i = 0; i < kRequests; ++i) {
    ServiceRequest request;
    request.query =
        MakeQuery(Topology::kStarChain, 7 + i % 4, 200 + i % 6);
    request.fallback_enabled = i % 3 != 0;
    switch (i % 4) {
      case 0:
        request.budget.deadline_seconds = 0.002;  // Almost surely trips.
        break;
      case 1:
        request.budget.max_plans_costed = 100 + 50 * (i % 5);
        break;
      case 2:
        request.cancel = &cancel_now;
        break;
      case 3:
        request.budget.deadline_seconds = 30;  // Never trips.
        break;
    }
    const bool cancelled = i % 4 == 2;
    submitted.push_back(
        Submitted{service.Submit(std::move(request)), cancelled});
  }

  int feasible = 0, typed_failures = 0;
  for (Submitted& s : submitted) {
    ServiceResult r = s.future.get();
    ASSERT_TRUE(r.error.empty()) << r.error;
    if (r.result.feasible) {
      ++feasible;
      EXPECT_TRUE(r.result.status.ok());
      EXPECT_EQ(ValidatePlanTree(r.result.plan), "");
    } else {
      ++typed_failures;
      EXPECT_FALSE(r.result.status.ok());
      if (s.cancelled) {
        EXPECT_EQ(r.result.status.code, OptStatusCode::kCancelled);
      }
    }
  }
  EXPECT_EQ(feasible + typed_failures, kRequests);
  EXPECT_GT(feasible, 0);        // The generous-deadline cohort succeeds.
  EXPECT_GT(typed_failures, 0);  // The cancelled cohort fails typed.
  EXPECT_EQ(service.metrics().requests_completed.load(),
            static_cast<uint64_t>(kRequests));
}

}  // namespace
}  // namespace sdp
