// End-to-end tests of single-table filter predicates: selectivity
// estimation (histograms), cardinality propagation, optimization and
// execution correctness.
#include <gtest/gtest.h>

#include <algorithm>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "engine/executor.h"
#include "engine/table_data.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "query/topology.h"
#include "workload/workload.h"

namespace sdp {
namespace {

SchemaConfig SmallSchema() {
  SchemaConfig config;
  config.num_relations = 8;
  config.min_rows = 50;
  config.max_rows = 3000;
  config.min_domain = 20;
  config.max_domain = 3000;
  config.seed = 77;
  return config;
}

class FilterTest : public ::testing::Test {
 protected:
  FilterTest()
      : catalog_(MakeSyntheticCatalog(SmallSchema())),
        db_(Database::Generate(catalog_, 13)),
        stats_(db_.Analyze()) {}

  Catalog catalog_;
  Database db_;
  StatsCatalog stats_;
};

TEST_F(FilterTest, SelectivityBounds) {
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 3;
  spec.num_instances = 1;
  const Query q = GenerateWorkload(catalog_, spec).front();
  CostModel cost(catalog_, stats_, q.graph);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kLe,
                       CompareOp::kGt, CompareOp::kGe}) {
    FilterPredicate f{ColumnRef{0, 0}, op, 10};
    const double sel = cost.FilterSelectivity(f);
    EXPECT_GT(sel, 0);
    EXPECT_LE(sel, 1);
  }
}

TEST_F(FilterTest, RangeSelectivityMonotoneInThreshold) {
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 3;
  spec.num_instances = 1;
  const Query q = GenerateWorkload(catalog_, spec).front();
  CostModel cost(catalog_, stats_, q.graph);
  double prev = 0;
  const ColumnStats& s = stats_.Get(q.graph.table_id(0), 0);
  const int64_t max_v = static_cast<int64_t>(s.max_value);
  for (int64_t v = 0; v <= max_v; v += std::max<int64_t>(1, max_v / 8)) {
    FilterPredicate f{ColumnRef{0, 0}, CompareOp::kLt, v};
    const double sel = cost.FilterSelectivity(f);
    EXPECT_GE(sel, prev - 1e-12);
    prev = sel;
  }
}

TEST_F(FilterTest, FiltersReduceEstimatedRows) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 5;
  spec.num_instances = 1;
  const Query base = GenerateWorkload(catalog_, spec).front();

  Query filtered = base;
  const ColumnStats& s = stats_.Get(filtered.graph.table_id(1), 0);
  filtered.filters.push_back(
      FilterPredicate{ColumnRef{1, 0}, CompareOp::kLt,
                      static_cast<int64_t>(s.max_value / 2)});

  CostModel unfiltered_cost(catalog_, stats_, base.graph);
  CostModel filtered_cost(catalog_, stats_, filtered.graph, CostParams(),
                          filtered.filters);
  CardinalityEstimator a(base.graph, unfiltered_cost, nullptr);
  CardinalityEstimator b(filtered.graph, filtered_cost, nullptr);
  const RelSet all = base.graph.AllRelations();
  EXPECT_LT(b.Rows(all), a.Rows(all));
  EXPECT_LT(filtered_cost.ScanOutputRows(1), unfiltered_cost.BaseRows(1));
}

TEST_F(FilterTest, ExecutionMatchesAcrossOptimizersWithFilters) {
  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 7;
  spec.num_instances = 2;
  spec.seed = 4;
  for (Query q : GenerateWorkload(catalog_, spec)) {
    // Filter two relations: a range on the hub, an equality on a spoke.
    const ColumnStats& hub_stats = stats_.Get(q.graph.table_id(0), 1);
    q.filters.push_back(
        FilterPredicate{ColumnRef{0, 1}, CompareOp::kLt,
                        static_cast<int64_t>(hub_stats.max_value * 0.7)});
    q.filters.push_back(FilterPredicate{ColumnRef{2, 0}, CompareOp::kGe, 3});

    CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
    Executor exec(db_, q.graph, q.filters);
    const ResultSet reference = exec.ExecuteReference();

    for (const OptimizeResult& r :
         {OptimizeDP(q, cost), OptimizeIDP(q, cost, IdpConfig{4}),
          OptimizeSDP(q, cost)}) {
      ASSERT_TRUE(r.feasible);
      const ResultSet rs = exec.Execute(r.plan);
      EXPECT_EQ(rs.num_rows(), reference.num_rows()) << r.algorithm;
    }
  }
}

TEST_F(FilterTest, FilteredExecutionRespectsPredicates) {
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 3;
  spec.num_instances = 1;
  Query q = GenerateWorkload(catalog_, spec).front();
  // Equality filter on a join column of relation 1 (carried in tuples, so
  // we can verify it directly on the output).
  const JoinEdge& e = q.graph.edges()[0];
  const ColumnRef target = e.left.rel == 1 ? e.left : e.right;
  ASSERT_EQ(target.rel, 1);
  const int64_t v = db_.table(q.graph.table_id(1)).columns[target.col][0];
  q.filters.push_back(FilterPredicate{target, CompareOp::kEq, v});

  CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
  const OptimizeResult r = OptimizeDP(q, cost);
  ASSERT_TRUE(r.feasible);
  Executor exec(db_, q.graph, q.filters);
  const ResultSet rs = exec.Execute(r.plan);
  const int offset = rs.OffsetOf(target);
  ASSERT_GE(offset, 0);
  for (const auto& row : rs.rows) EXPECT_EQ(row[offset], v);
}

TEST_F(FilterTest, ActualFilteredCardinalityTracked) {
  // Executed filtered scan size vs the estimator's ScanOutputRows.
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 2;
  spec.num_instances = 1;
  Query q = GenerateWorkload(catalog_, spec).front();
  const ColumnStats& s = stats_.Get(q.graph.table_id(0), 3);
  q.filters.push_back(
      FilterPredicate{ColumnRef{0, 3}, CompareOp::kLt,
                      static_cast<int64_t>(s.max_value / 2)});
  CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);

  const auto& column = db_.table(q.graph.table_id(0)).columns[3];
  const int64_t actual = std::count_if(
      column.begin(), column.end(),
      [&](int64_t v) { return v < static_cast<int64_t>(s.max_value / 2); });
  const double estimated = cost.ScanOutputRows(0);
  // Histogram-based estimate within 2x for a clean range predicate.
  if (actual > 10) {
    EXPECT_LT(estimated / static_cast<double>(actual), 2.0);
    EXPECT_GT(estimated / static_cast<double>(actual), 0.5);
  }
}

TEST_F(FilterTest, SDPRemainsRobustWithFilters) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 7;
  spec.num_instances = 3;
  spec.seed = 9;
  for (Query q : GenerateWorkload(catalog_, spec)) {
    q.filters.push_back(FilterPredicate{ColumnRef{1, 0}, CompareOp::kGt, 2});
    q.filters.push_back(FilterPredicate{ColumnRef{3, 1}, CompareOp::kLe, 500});
    CostModel cost(catalog_, stats_, q.graph, CostParams(), q.filters);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult sdp = OptimizeSDP(q, cost);
    ASSERT_TRUE(dp.feasible && sdp.feasible);
    EXPECT_LE(sdp.cost / dp.cost, 2.0);
  }
}

}  // namespace
}  // namespace sdp
