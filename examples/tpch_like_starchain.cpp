// TPC-H-flavoured scenario: a star-chain join graph structurally similar to
// TPC-H Q8/Q9 (the shape that motivates the paper, Figure 1.1), with an
// ORDER BY on a join column so interesting orders come into play.  Shows
// how SDP's rescue partitions keep order-providing JCRs alive and how the
// final plans satisfy the requested order.
#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "harness/experiment.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

int main() {
  // The paper's 25-relation schema.
  sdp::Catalog catalog = sdp::MakeSyntheticCatalog(sdp::SchemaConfig{});
  sdp::StatsCatalog stats = sdp::SynthesizeStats(catalog);

  // An ordered Star-Chain-15 instance: hub + 10 spokes + 4-relation chain,
  // ORDER BY a random join column (the paper's "ordered variant").
  sdp::WorkloadSpec spec;
  spec.topology = sdp::Topology::kStarChain;
  spec.num_relations = 15;
  spec.num_instances = 1;
  spec.ordered = true;
  spec.seed = 8;
  const sdp::Query query =
      sdp::GenerateWorkload(catalog, spec).front();

  std::cout << "Star-Chain-15 (TPC-H Q8/Q9 shape), ORDER BY R"
            << query.order_by->column.rel << ".c"
            << query.order_by->column.col << "\n";
  std::cout << query.graph.ToString() << "\n\n";

  sdp::CostModel cost(catalog, stats, query.graph);
  const sdp::OptimizeResult dp = sdp::OptimizeDP(query, cost);
  const sdp::OptimizeResult idp7 =
      sdp::OptimizeIDP(query, cost, sdp::IdpConfig{7});
  const sdp::OptimizeResult sdp_r = sdp::OptimizeSDP(query, cost);

  // SDP without the interesting-order rescue partitions, to show their
  // effect (Section 2.1.4).
  sdp::SdpConfig no_rescue;
  no_rescue.order_partitions = false;
  const sdp::OptimizeResult sdp_nr =
      sdp::OptimizeSDP(query, cost, no_rescue, {});

  std::printf("%-16s %12s %10s %14s\n", "technique", "cost", "vs DP",
              "plans costed");
  for (const sdp::OptimizeResult* r : {&dp, &idp7, &sdp_r, &sdp_nr}) {
    std::printf("%-16s %12.1f %9.3fx %14llu\n",
                (r == &sdp_nr ? "SDP(no rescue)" : r->algorithm.c_str()),
                r->cost, r->cost / dp.cost,
                static_cast<unsigned long long>(r->counters.plans_costed));
  }

  const int required = query.graph.EquivClass(query.order_by->column);
  std::cout << "\nRequested ordering equivalence class: eq" << required
            << "\n";
  std::cout << "SDP plan delivers ordering: eq" << sdp_r.plan->ordering
            << (sdp_r.plan->kind == sdp::PlanKind::kSort
                    ? " (via explicit Sort)"
                    : " (order produced by the join strategy itself)")
            << "\n\n";
  std::cout << "SDP plan:\n" << sdp_r.plan->ToString();
  return 0;
}
