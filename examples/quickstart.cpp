// Quickstart: build the paper's synthetic schema, generate a star-chain
// query, optimize it with DP, IDP and SDP, and compare the chosen plans.
#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "harness/experiment.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

int main() {
  // 1. The paper's 25-relation synthetic schema with ANALYZE-style stats.
  sdp::Catalog catalog = sdp::MakeSyntheticCatalog(sdp::SchemaConfig{});
  sdp::StatsCatalog stats = sdp::SynthesizeStats(catalog);

  // 2. One Star-Chain-15 query instance (Figure 1.1's shape).
  sdp::WorkloadSpec spec;
  spec.topology = sdp::Topology::kStarChain;
  spec.num_relations = 15;
  spec.num_instances = 1;
  spec.seed = 42;
  std::vector<sdp::Query> queries = sdp::GenerateWorkload(catalog, spec);
  const sdp::Query& query = queries.front();
  std::cout << query.graph.ToString() << "\n\n";

  // 3. Optimize with the three strategies.
  sdp::CostModel cost(catalog, stats, query.graph);
  const sdp::OptimizeResult dp = sdp::OptimizeDP(query, cost);
  const sdp::OptimizeResult idp = sdp::OptimizeIDP(query, cost);
  const sdp::OptimizeResult sdp_result = sdp::OptimizeSDP(query, cost);

  for (const sdp::OptimizeResult* r : {&dp, &idp, &sdp_result}) {
    std::printf("%-8s cost=%12.1f  ratio=%.3f  plans_costed=%8llu  "
                "memory=%6.2fMB  time=%.4fs\n",
                r->algorithm.c_str(), r->cost, r->cost / dp.cost,
                static_cast<unsigned long long>(r->counters.plans_costed),
                r->peak_memory_mb, r->elapsed_seconds);
  }

  std::cout << "\nSDP plan:\n" << sdp_result.plan->ToString();
  std::cout << "\nJoin order: " << sdp_result.plan->Shape() << "\n";
  return 0;
}
