// Data-warehouse scenario: a star query written in SQL against a generated
// schema, optimized with DP, IDP and SDP, and each chosen plan *executed*
// on materialized data -- demonstrating the full library stack
// (SQL -> join graph -> statistics -> optimizer -> executor) and that all
// three plans return identical results.
#include <cstdio>
#include <iostream>
#include <string>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "engine/executor.h"
#include "engine/table_data.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "sql/parser.h"

namespace {

// A small warehouse: one fact table, five dimensions.
sdp::Catalog MakeWarehouse() {
  sdp::Catalog catalog;
  auto make = [&](const std::string& name, uint64_t rows,
                  std::vector<std::pair<std::string, uint64_t>> cols,
                  int indexed) {
    sdp::Table t;
    t.name = name;
    t.row_count = rows;
    for (auto& [cname, domain] : cols) {
      t.columns.push_back(
          sdp::Column{cname, domain, sdp::DataDistribution::kUniform});
    }
    t.indexed_column = indexed;
    catalog.AddTable(std::move(t));
  };
  make("sales", 20000,
       {{"s_id", 20000},
        {"s_product", 400},
        {"s_customer", 800},
        {"s_store", 40},
        {"s_date", 365},
        {"s_promo", 60}},
       /*indexed=*/0);
  make("product", 400, {{"p_id", 400}, {"p_category", 20}}, 0);
  make("customer", 800, {{"c_id", 800}, {"c_segment", 10}}, 0);
  make("store", 40, {{"st_id", 40}, {"st_region", 5}}, 0);
  make("datedim", 365, {{"d_id", 365}, {"d_month", 12}}, 0);
  make("promotion", 60, {{"pr_id", 60}, {"pr_channel", 6}}, 0);
  return catalog;
}

}  // namespace

int main() {
  sdp::Catalog catalog = MakeWarehouse();

  // Materialize the warehouse and collect real statistics (ANALYZE).
  sdp::Database db = sdp::Database::Generate(catalog, /*seed=*/11);
  sdp::StatsCatalog stats = db.Analyze();

  const std::string sql =
      "SELECT * "
      "FROM sales s, product p, customer c, store st, datedim d, promotion pr "
      "WHERE s.s_product = p.p_id AND s.s_customer = c.c_id "
      "AND s.s_store = st.st_id AND s.s_date = d.d_id "
      "AND s.s_promo = pr.pr_id";
  std::cout << "Query:\n  " << sql << "\n\n";

  const sdp::ParseResult parsed = sdp::ParseSelect(sql, catalog);
  if (const auto* error = std::get_if<sdp::ParseError>(&parsed)) {
    std::cerr << "parse error: " << error->message << "\n";
    return 1;
  }
  const sdp::Query& query = std::get<sdp::ParsedQuery>(parsed).query;
  std::cout << query.graph.ToString() << "\n";
  std::cout << "Hub degrees: sales joins " << query.graph.Degree(0)
            << " dimensions (star)\n\n";

  sdp::CostModel cost(catalog, stats, query.graph);
  sdp::Executor exec(db, query.graph);

  const sdp::OptimizeResult results[] = {
      sdp::OptimizeDP(query, cost),
      sdp::OptimizeIDP(query, cost, sdp::IdpConfig{4}),
      sdp::OptimizeSDP(query, cost),
  };
  int64_t reference_rows = -1;
  for (const sdp::OptimizeResult& r : results) {
    const sdp::ResultSet rs = exec.Execute(r.plan);
    std::printf("%-8s est_cost=%10.1f  plans_costed=%6llu  join order %s\n",
                r.algorithm.c_str(), r.cost,
                static_cast<unsigned long long>(r.counters.plans_costed),
                r.plan->Shape().c_str());
    std::printf("         executed: %lld result rows (estimated %.0f)\n",
                static_cast<long long>(rs.num_rows()), r.rows);
    if (reference_rows < 0) reference_rows = rs.num_rows();
    if (rs.num_rows() != reference_rows) {
      std::cerr << "ERROR: plans disagree on the result!\n";
      return 1;
    }
  }
  std::cout << "\nAll three optimizers' plans returned identical row counts; "
               "SDP matched DP's\nplan quality at a fraction of the "
               "enumeration effort.\n";
  return 0;
}
