// Scalability demonstration: a 30-relation star under a 64 MB optimizer
// memory budget.  Exhaustive DP and IDP(7) exhaust the budget; SDP returns
// a plan in well under a second -- the regime the paper's Tables 1.3/1.4
// and 3.3 characterize.
#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "harness/experiment.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

int main() {
  // Extended schema: enough relations (and hub columns) for very wide stars.
  sdp::Catalog catalog =
      sdp::MakeSyntheticCatalog(sdp::ExtendedSchemaConfig(50));
  sdp::StatsCatalog stats = sdp::SynthesizeStats(catalog);

  sdp::WorkloadSpec spec;
  spec.topology = sdp::Topology::kStar;
  spec.num_relations = 30;
  spec.num_instances = 1;
  spec.seed = 3;
  const sdp::Query query = sdp::GenerateWorkload(catalog, spec).front();

  sdp::OptimizerOptions budget;
  budget.memory_budget_bytes = 64ull << 20;
  std::cout << "Optimizing a 30-relation star join under a 64 MB budget\n\n";

  sdp::CostModel cost(catalog, stats, query.graph);
  const std::vector<sdp::AlgorithmSpec> algos = {
      sdp::AlgorithmSpec::DP(), sdp::AlgorithmSpec::IDP(7),
      sdp::AlgorithmSpec::IDP(4), sdp::AlgorithmSpec::SDP()};

  const sdp::OptimizeResult* sdp_result = nullptr;
  std::vector<sdp::OptimizeResult> results;
  results.reserve(algos.size());
  for (const sdp::AlgorithmSpec& algo : algos) {
    results.push_back(sdp::RunAlgorithm(algo, query, cost, budget));
  }
  std::printf("%-8s %10s %12s %10s %16s\n", "tech", "feasible", "memory(MB)",
              "time(s)", "plans costed");
  for (const sdp::OptimizeResult& r : results) {
    std::printf("%-8s %10s %12.2f %10.3f %16llu\n", r.algorithm.c_str(),
                r.feasible ? "yes" : "NO (budget)", r.peak_memory_mb,
                r.elapsed_seconds,
                static_cast<unsigned long long>(r.counters.plans_costed));
    if (r.feasible && r.algorithm == "SDP") sdp_result = &results.back();
  }
  if (sdp_result == nullptr) {
    std::cerr << "unexpected: SDP infeasible\n";
    return 1;
  }
  std::cout << "\nSDP's chosen join order:\n  " << sdp_result->plan->Shape()
            << "\n";
  std::cout << "\n(The paper's Table 3.3 scaleup experiment -- "
               "bench_table_3_3 -- pushes this\nto 45+ relation stars.)\n";
  return 0;
}
